// Package rma implements the Rewired Memory Array (RMA) of De Leo and
// Boncz, "Packed Memory Arrays – Rewired" (ICDE 2019): a sorted sparse
// array of 8-byte key/value pairs that keeps its elements physically
// sequential under updates.
//
// A packed memory array stores sorted elements interleaved with gaps so
// that inserts and deletes happen in place, at amortized O(log² N) moved
// elements per update — while range scans remain truly sequential,
// approaching dense column-scan speed. The RMA makes that practical with
// five features the paper contributes or adopts:
//
//   - fixed-size segments tuned like (a,b)-tree leaves (capacity B);
//   - clustering: segment contents pack toward alternating segment ends,
//     so each segment pair exposes one contiguous run and scans pay no
//     per-slot gap checks;
//   - a static, pointer-free index routing keys to segments — upgraded
//     here to a branchless Eytzinger-layout descent by default, with
//     the paper's exact Fig 5 index behind WithIndexKind;
//   - memory rewiring: rebalances write each element once into spare
//     pages and swap virtual page-table entries instead of copying twice;
//   - adaptive rebalancing: a Detector recognizes skewed ("hammered")
//     update patterns and concentrates gaps where the next inserts will
//     land.
//
// Keys form a multiset: duplicates are allowed, Delete removes one
// occurrence. An Array is not safe for concurrent use; for concurrent
// serving, NewSharded partitions the key space across independent
// arrays behind per-shard locks (see Sharded and CONCURRENCY.md).
//
// # Quick start
//
//	a, err := rma.New()
//	if err != nil { ... }
//	a.Insert(42, 420)
//	v, ok := a.Find(42)
//	count, sum := a.Sum(0, 100)      // sequential range aggregation
//	for k, v := range a.Range(0, 100) { fmt.Println(k, v) }
//
// # Iteration
//
// Four lazy range-over-func forms — All, Ascend(lo), Descend(hi) and
// Range(lo, hi) — iterate in key order without materializing anything:
// a segment-hopping walker borrows each segment's dense run straight
// from the page space, so a traversal holds O(1) state regardless of
// range size. NewCursor exposes the same walker pull-style (Next/Key/
// Value, SeekGE repositioning via the static index) for merge joins and
// pagination. Iterators and cursors are snapshot-free: mutating the
// array invalidates them.
//
// # Batched lookups
//
// GetBatch resolves many point lookups in one call: the probe set is
// sorted once (an allocation-free radix sort) and adjacent probes share
// index descents through last-segment memoization and a galloping
// separator advance, so a batch beats the equivalent loop of Find calls
// on sorted and random probe sets alike. Every backend implements it;
// the Sharded form groups probes per shard first and locks each shard
// exactly once.
//
// # Navigation and order statistics
//
// Floor, Ceiling, Rank, Select and CountRange complete the ordered-map
// surface. Rank-based queries run in O(log n): the array maintains a
// Fenwick tree over its per-segment cardinalities — updated on every
// insert, delete, rebalance and resize — so a rank is one prefix sum
// plus one in-segment binary search, and Select is one Fenwick descent.
//
// # Backends
//
// The OrderedMap and UpdatableMap interfaces cover this entire surface,
// and every comparison structure of the paper's evaluation implements
// them: ABTree (tuned (a,b)-tree), ARTTree (ART-indexed tree), Dense
// (sorted column) and StaticIndexed (sorted column routed by the
// pointer-free static index) — as does the concurrent Sharded serving
// layer. Benchmarks, examples and cmd/rmabench drive any backend
// interchangeably through the interface.
package rma

import (
	"rma/internal/calibrator"
	"rma/internal/core"
	"rma/internal/vmem"
)

// Array is a Rewired Memory Array. Create one with New.
type Array struct {
	a *core.Array
}

// options collects everything the constructors accept: the engine
// configuration plus facade-level settings that have no core
// counterpart (the background rebalancer only exists at the sharded
// serving layer).
type options struct {
	cfg core.Config
	// rebalWorkers is the background-rebalancer worker count for
	// NewSharded/NewShardedFromSample: 0 keeps rebalancing synchronous,
	// < 0 means one worker per available CPU. Ignored by New.
	rebalWorkers int
	// durDir, when non-empty, roots the durability tree the structure
	// checkpoints into (WithDurability).
	durDir string
	// lockFree enables the sharded layer's seqlock read path
	// (WithLockFreeReads). Ignored by New.
	lockFree bool
	// wal, when non-nil, composes a write-ahead log with the durability
	// tree (WithWAL). Ignored by New.
	wal *WALConfig
}

func defaultOptions() options {
	return options{cfg: core.DefaultConfig()}
}

// Option configures New, NewSharded and NewShardedFromSample.
type Option func(*options)

// WithSegmentCapacity sets the segment size B in elements (power of two,
// >= 4; default 128, the paper's default). Larger segments favour scans,
// smaller ones favour updates, exactly like (a,b)-tree leaves.
func WithSegmentCapacity(b int) Option {
	return func(o *options) { o.cfg.SegmentSlots = b }
}

// WithUpdateOrientedThresholds selects the update-oriented density
// thresholds (rho1=0.08, rhoH=0.3, tauH=0.75, tau1=1, doubling resizes) —
// the default, favouring update throughput.
func WithUpdateOrientedThresholds() Option {
	return func(o *options) { o.cfg.Thresholds = calibrator.UpdateOriented() }
}

// WithScanOrientedThresholds selects the scan-oriented thresholds
// (rho1=0, rhoH=tauH=0.75, tau1=1, proportional resizes, forced shrink
// below 50% fill): ~20% slower updates, denser array, faster scans and a
// smaller footprint (Section III of the paper).
func WithScanOrientedThresholds() Option {
	return func(o *options) { o.cfg.Thresholds = calibrator.ScanOriented() }
}

// WithAdaptiveRebalancing enables (default) or disables the adaptive
// rebalancing of Section IV. Disabled, every rebalance spreads elements
// evenly (the traditional policy).
func WithAdaptiveRebalancing(on bool) Option {
	return func(o *options) {
		if on {
			o.cfg.Adaptive = core.AdaptiveRMA
		} else {
			o.cfg.Adaptive = core.AdaptiveOff
		}
	}
}

// WithMemoryRewiring enables (default) or disables rewired rebalances.
// Disabled, rebalances use the classic two-pass copy and resizes allocate
// fresh zeroed memory.
func WithMemoryRewiring(on bool) Option {
	return func(o *options) {
		if on {
			o.cfg.Rebalance = core.RebalanceRewired
		} else {
			o.cfg.Rebalance = core.RebalanceTwoPass
		}
	}
}

// IndexKind selects the structure that routes keys to segments; see the
// core kinds re-exported below.
type IndexKind = core.IndexKind

// The segment-index kinds accepted by WithIndexKind.
const (
	// IndexEytzinger (the default) stores separators in BFS order and
	// descends branchlessly with software prefetch of the levels ahead.
	IndexEytzinger = core.IndexEytzinger
	// IndexStatic is the paper's pointer-free packed index (Fig 5).
	IndexStatic = core.IndexStatic
	// IndexDynamic is the traditional flat sorted side index.
	IndexDynamic = core.IndexDynamic
)

// WithIndexKind selects the segment-index structure — the escape hatch
// back to the paper's exact Fig 5 index (IndexStatic) or the
// traditional side index (IndexDynamic) from the default branchless
// Eytzinger descent.
func WithIndexKind(k IndexKind) Option {
	return func(o *options) { o.cfg.Index = k }
}

// WithPageCapacity sets the rewiring page size in slots (power of two,
// >= 2*B; default 2048 slots = 16 KB per page and array). Smaller pages
// rewire more often; larger pages amortize swaps over more data.
func WithPageCapacity(slots int) Option {
	return func(o *options) { o.cfg.PageSlots = slots }
}

// WithBackgroundRebalancing enables the asynchronous per-shard
// rebalancer of the sharded serving layer (NewSharded and
// NewShardedFromSample; New ignores it — a sequential Array has no
// maintenance goroutines). workers sets the maintenance pool size: 0
// disables (the default, synchronous rebalancing), < 0 sizes the pool
// to one worker per available CPU.
//
// With the rebalancer on, an insert that overflows its window does only
// the minimal local make-room needed to complete and defers the policy
// rebalance (or resize) to the pool, shrinking the writer's tail
// latency; iterators, scans and ApplyBatch still observe fully
// rebalanced shards (flush-on-snapshot). Call Close on the Sharded map
// to drain and stop the pool. See CONCURRENCY.md for the full deferred
// work contract.
func WithBackgroundRebalancing(workers int) Option {
	return func(o *options) { o.rebalWorkers = workers }
}

// WithLockFreeReads switches the sharded map's point-read fast path to
// an optimistic seqlock protocol (NewSharded, NewShardedFromSample and
// OpenSharded; New ignores it — a sequential Array has no locks to
// elide). Find, Contains, Floor, Ceiling and GetBatch first attempt the
// read without acquiring the shard lock: writers bump a per-shard
// version word around every mutation, readers validate it around an
// optimistic probe of the engine's published read view and retry on a
// lost race, falling back to the locked path after a bounded number of
// attempts — so write-hot shards degrade to today's behavior instead of
// live-locking readers. Pages retired by concurrent rebalances pass
// through an epoch gate and are recycled only after every optimistic
// reader has moved on.
//
// Cross-shard reads (iterators, ScanRange, Rank) additionally track a
// per-shard version vector: Rank retries until one consistent cut
// covers every contributing shard, and SnapshotScan reports whether the
// whole traversal observed a single consistent cut. Read-path counters
// appear in Stats (LockFreeReads, ReadRetries, ReadFallbacks,
// EpochAdvances, SnapshotBreaks). See CONCURRENCY.md for the protocol
// and its memory-model argument.
func WithLockFreeReads() Option {
	return func(o *options) { o.lockFree = true }
}

// New builds an empty Rewired Memory Array.
func New(opts ...Option) (*Array, error) {
	o := defaultOptions()
	for _, fn := range opts {
		fn(&o)
	}
	a, err := core.New(o.cfg)
	if err != nil {
		return nil, err
	}
	if o.durDir != "" {
		reg, err := vmem.CreateFileRegion(o.durDir, o.cfg.PageSlots)
		if err != nil {
			return nil, err
		}
		if err := a.AttachDurability(reg); err != nil {
			reg.Close()
			return nil, err
		}
	}
	return &Array{a: a}, nil
}

// NewTPMA builds a traditional PMA (the Fig 1a baseline: interleaved
// layout, log-sized segments, dynamic side index, two-pass rebalances,
// even rebalancing). It shares the full ordered-map surface, so the
// harness and applications can compare it against the RMA through the
// same interface.
func NewTPMA() (*Array, error) {
	a, err := core.New(core.BaselineConfig())
	if err != nil {
		return nil, err
	}
	return &Array{a: a}, nil
}

// Insert adds a key/value pair. The error is non-nil only when the
// storage substrate fails to allocate; the array remains consistent.
func (r *Array) Insert(key, val int64) error { return r.a.Insert(key, val) }

// Delete removes one occurrence of key, reporting whether it existed.
func (r *Array) Delete(key int64) (bool, error) { return r.a.Delete(key) }

// Find returns a value stored under key.
func (r *Array) Find(key int64) (int64, bool) { return r.a.Find(key) }

// Lookup is one GetBatch result: the value found under the probed key
// and whether the key was present.
type Lookup = core.Lookup

// GetBatch resolves a batch of point lookups at once: out is grown to
// len(keys) (reused when its capacity suffices) and out[i] answers
// keys[i]. The batch sorts its probe set once and amortizes index
// descents across adjacent keys, so it beats len(keys) individual Find
// calls on both sorted and random probe sets; steady-state calls are
// allocation-free.
func (r *Array) GetBatch(keys []int64, out []Lookup) []Lookup { return r.a.FindBatch(keys, out) }

// Contains reports whether key is stored.
func (r *Array) Contains(key int64) bool { return r.a.Contains(key) }

// Min returns the smallest stored key.
func (r *Array) Min() (int64, bool) { return r.a.Min() }

// Max returns the largest stored key.
func (r *Array) Max() (int64, bool) { return r.a.Max() }

// ScanRange visits every element with lo <= key <= hi in key order; the
// scan runs one tight loop per segment pair over dense runs.
func (r *Array) ScanRange(lo, hi int64, yield func(key, val int64) bool) {
	r.a.ScanRange(lo, hi, yield)
}

// Scan visits every element in key order.
func (r *Array) Scan(yield func(key, val int64) bool) { r.a.Scan(yield) }

// Sum aggregates elements with lo <= key <= hi, returning their count
// and the sum of their values — the paper's range-scan measurement.
func (r *Array) Sum(lo, hi int64) (count int, sum int64) { return r.a.Sum(lo, hi) }

// SumAll aggregates every element (full column scan).
func (r *Array) SumAll() (count int, sum int64) { return r.a.SumAll() }

// BulkLoad inserts a batch with the paper's bottom-up bulk-loading
// algorithm, rebalancing each touched window at most once.
func (r *Array) BulkLoad(keys, vals []int64) error {
	return r.a.BulkLoad(core.Batch{Keys: keys, Vals: vals})
}

// BulkUpdate applies deletions then insertions as one batch: the
// streaming pattern where the cardinality stays constant.
func (r *Array) BulkUpdate(insertKeys, insertVals []int64, deleteKeys []int64) error {
	return r.a.BulkUpdate(core.Batch{Keys: insertKeys, Vals: insertVals}, deleteKeys)
}

// Size returns the number of stored elements.
func (r *Array) Size() int { return r.a.Size() }

// Capacity returns the number of slots (stored elements + gaps).
func (r *Array) Capacity() int { return r.a.Capacity() }

// SegmentCapacity returns the segment size B.
func (r *Array) SegmentCapacity() int { return r.a.SegmentSlots() }

// Density returns the fill factor Size/Capacity.
func (r *Array) Density() float64 { return r.a.Density() }

// FootprintBytes returns the physical memory held by the array,
// including spare rewiring pages, the index and the detector.
func (r *Array) FootprintBytes() int64 { return r.a.FootprintBytes() }

// Stats is a snapshot of the array's operation counters.
type Stats struct {
	Inserts, Deletes, Lookups uint64
	// Rebalances counts window rebalances; AdaptiveRebalances those that
	// used the Detector's marked intervals.
	Rebalances, AdaptiveRebalances uint64
	// RebalancedElements counts elements moved by rebalances;
	// ElementCopies counts copy operations (two-pass copies twice).
	RebalancedElements, ElementCopies uint64
	// PageSwaps counts O(1) virtual page rewirings.
	PageSwaps uint64
	// Resizes, Grows, Shrinks count capacity changes.
	Resizes, Grows, Shrinks uint64
	BulkLoads               uint64
	// DeferredWindows counts density violations handed to the
	// background rebalancer instead of repaired on the write path;
	// MaintenanceRuns counts the background passes that executed the
	// deferred rebalance or resize. Both stay 0 without
	// WithBackgroundRebalancing.
	DeferredWindows, MaintenanceRuns uint64
	// AllocFailures counts storage allocation failures surfaced as
	// ErrAllocFailed; the structure stays consistent after each one.
	AllocFailures uint64
	// Checkpoints and CheckpointFailures count published and failed
	// checkpoint attempts; CheckpointPages counts pages persisted across
	// all published checkpoints. All stay 0 without WithDurability.
	Checkpoints, CheckpointFailures, CheckpointPages uint64
	// Lock-free read-path counters; all stay 0 without
	// WithLockFreeReads. LockFreeReads counts point reads served without
	// a shard lock; ReadRetries counts optimistic attempts discarded by
	// a racing writer; ReadFallbacks counts reads that exhausted their
	// retry budget and took the locked path; EpochAdvances counts
	// retired-page reclamation rounds; SnapshotBreaks counts cross-shard
	// reads that lost version-vector consistency and degraded to
	// per-shard semantics.
	LockFreeReads, ReadRetries, ReadFallbacks uint64
	EpochAdvances, SnapshotBreaks             uint64
	// Write-ahead-log counters; all stay 0 without WithWAL. Records,
	// waves and syncs count staged records, group-commit waves and
	// fsyncs; rotations/truncations count segment lifecycle; the
	// *Failures counters count faults on each WAL edge (injected or
	// real) — after every one the store keeps serving with its last
	// recovery point intact. AutoCheckpoints counts the checkpoint
	// rounds the automatic scheduler started.
	WALRecords, WALWaves, WALSyncs         uint64
	WALRotations, WALTruncations           uint64
	WALAppendFailures, WALSyncFailures     uint64
	WALRotateFailures, WALTruncateFailures uint64
	AutoCheckpoints                        uint64
}

// Stats returns the operation counters accumulated so far.
func (r *Array) Stats() Stats {
	s := r.a.Stats()
	return Stats{
		Inserts: s.Inserts, Deletes: s.Deletes, Lookups: s.Lookups,
		Rebalances: s.Rebalances, AdaptiveRebalances: s.AdaptiveRebalances,
		RebalancedElements: s.RebalancedElements, ElementCopies: s.ElementCopies,
		PageSwaps: s.PageSwaps,
		Resizes:   s.Resizes, Grows: s.Grows, Shrinks: s.Shrinks,
		BulkLoads:       s.BulkLoads,
		DeferredWindows: s.DeferredWindows, MaintenanceRuns: s.MaintenanceRuns,
		AllocFailures: s.AllocFailures,
		Checkpoints:   s.Checkpoints, CheckpointFailures: s.CheckpointFailures,
		CheckpointPages: s.CheckpointPages,
	}
}

// Validate checks every structural invariant; it is O(n) and meant for
// tests and debugging.
func (r *Array) Validate() error { return r.a.Validate() }
