package rma

import (
	"sync"
	"testing"
)

// FuzzSeqlockInterleave explores reader-retry vs writer-publish
// interleavings on the lock-free read path. The input stream decodes
// into one writer's mutation sequence (puts, deletes and batch bursts —
// with 8-slot segments and 32-slot pages every burst provokes segment
// spreads, page swaps and resizes, i.e. the publication events the
// seqlock and epoch machinery guard) and a concurrent probe sequence
// the main goroutine races against it through Find, Floor, Ceiling,
// GetBatch and SnapshotScan. The shard count, probe mix and key shapes
// all come from the fuzzed data, so minimized inputs pin the smallest
// structure that provokes a divergence.
//
// Mid-flight, only interleaving-independent properties are asserted:
// any hit carries the key's one true value diffVal(k) (a torn or stale
// read through a recycled page would surface garbage here), navigation
// answers land on the correct side of the probe, snapshot scans yield
// sorted in-range elements. After the writer joins, the map must match
// the sequential reference exactly — a lost update or phantom from a
// racing reader's retry loop would show up as a final-state divergence.
func FuzzSeqlockInterleave(f *testing.F) {
	f.Add([]byte{0x01, 0x00, 0x41, 0x02, 0x81, 0x00, 0xc1, 0x04}, uint8(3), uint8(0x55))
	f.Add([]byte{0x00, 0x10, 0x00, 0x11, 0x00, 0x12, 0x80, 0x10}, uint8(5), uint8(0xC3))
	f.Add([]byte{0x3f, 0xff, 0x00, 0x00, 0xbf, 0xff, 0x40, 0x00}, uint8(2), uint8(0x0F))
	f.Fuzz(func(t *testing.T, data []byte, shardsRaw uint8, probeMix uint8) {
		k := int(shardsRaw)%7 + 2 // 2..8 shards
		type op struct {
			del bool
			key int64
		}
		var ops []op
		var sample []int64
		for i := 0; i+1 < len(data) && len(ops) < 2048; i += 2 {
			key := int64(data[i]&0x3f)<<8 | int64(data[i+1])
			del := data[i]&0x80 != 0
			ops = append(ops, op{del: del, key: key})
			if !del {
				sample = append(sample, key)
			}
		}
		if len(ops) == 0 {
			return
		}
		if len(sample) == 0 {
			sample = []int64{0}
		}
		s, err := NewShardedFromSample(k, sample,
			WithSegmentCapacity(8), WithPageCapacity(32), WithLockFreeReads())
		if err != nil {
			t.Fatal(err)
		}

		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i, o := range ops {
				if o.del {
					if _, err := s.Delete(o.key); err != nil {
						t.Error(err)
						return
					}
				} else if err := s.Insert(o.key, diffVal(o.key)); err != nil {
					t.Error(err)
					return
				}
				// Periodic batch bursts re-ingest a window of the stream,
				// forcing bulk loads (and their wholesale republications)
				// into the interleaving.
				if i%64 == 63 {
					lo := i - 63
					batch := make([]BatchOp, 0, 64)
					for _, b := range ops[lo : i+1] {
						if !b.del {
							batch = append(batch, BatchOp{Kind: OpPut, Key: b.key, Val: diffVal(b.key)})
						}
					}
					if _, err := s.ApplyBatch(batch); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}()

		// Race the probes against the writer; the mix rotates through the
		// read surface, keyed off the fuzzed probeMix byte.
		var batch [8]int64
		var out []Lookup
		for i, o := range ops {
			x := o.key
			switch (int(probeMix) + i) % 4 {
			case 0:
				if v, ok := s.Find(x); ok && v != diffVal(x) {
					t.Errorf("Find(%d) = %d, want %d", x, v, diffVal(x))
				}
			case 1:
				if fk, fv, ok := s.Floor(x); ok && (fk > x || fv != diffVal(fk)) {
					t.Errorf("Floor(%d) = (%d,%d)", x, fk, fv)
				}
				if ck, cv, ok := s.Ceiling(x); ok && (ck < x || cv != diffVal(ck)) {
					t.Errorf("Ceiling(%d) = (%d,%d)", x, ck, cv)
				}
			case 2:
				for j := range batch {
					batch[j] = x + int64(j)
				}
				out = s.GetBatch(batch[:], out)
				for j, bk := range batch {
					if out[j].OK && out[j].Val != diffVal(bk) {
						t.Errorf("GetBatch(%d) = %d, want %d", bk, out[j].Val, diffVal(bk))
					}
				}
			default:
				prev := int64(minInt64)
				s.SnapshotScan(x, x+256, func(sk, sv int64) bool {
					if sk < x || sk > x+256 || sk < prev || sv != diffVal(sk) {
						t.Errorf("SnapshotScan(%d,%d) yielded (%d,%d) after %d", x, x+256, sk, sv, prev)
						return false
					}
					prev = sk
					return true
				})
			}
			if t.Failed() {
				break
			}
		}
		wg.Wait()
		if t.Failed() {
			t.FailNow()
		}

		// Quiescent exact check: the concurrent reads must not have
		// perturbed the writer's outcome.
		m := &refModel{}
		for i, o := range ops {
			if o.del {
				m.delete(o.key)
			} else {
				m.insert(o.key)
			}
			if i%64 == 63 {
				for _, b := range ops[i-63 : i+1] {
					if !b.del {
						m.insert(b.key)
					}
				}
			}
		}
		probes := append(fuzzSeps(s), minInt64, maxInt64, 0, 1<<14)
		checkQueries(t, s, m, probes)
		if err := s.Validate(); err != nil {
			t.Fatal(err)
		}
	})
}
