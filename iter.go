package rma

import "iter"

// Iterators and navigation queries: the ordered-map surface of the
// array. All four iterator forms are lazy range-over-func sequences
// (Go 1.23+) backed by a segment-hopping walker in internal/core: they
// hold one segment index and one offset, never materialize the range,
// and borrow each segment's dense run straight from the page space.
//
// Like the callback scans, iterators are snapshot-free: mutating the
// array invalidates any iterator or cursor in flight.

const (
	minInt64 = -1 << 63
	maxInt64 = 1<<63 - 1
)

// All returns a lazy iterator over every element in ascending key order.
//
//	for k, v := range a.All() { ... }
func (r *Array) All() iter.Seq2[int64, int64] {
	return r.a.IterAscend(minInt64, maxInt64)
}

// Ascend returns a lazy ascending iterator over elements with key >= lo.
func (r *Array) Ascend(lo int64) iter.Seq2[int64, int64] {
	return r.a.IterAscend(lo, maxInt64)
}

// Descend returns a lazy descending iterator over elements with
// key <= hi, walking segments right to left.
func (r *Array) Descend(hi int64) iter.Seq2[int64, int64] {
	return r.a.IterDescend(minInt64, hi)
}

// Range returns a lazy ascending iterator over elements with
// lo <= key <= hi.
func (r *Array) Range(lo, hi int64) iter.Seq2[int64, int64] {
	return r.a.IterAscend(lo, hi)
}

// Floor returns the greatest stored element with key <= x.
func (r *Array) Floor(x int64) (key, val int64, ok bool) { return r.a.Floor(x) }

// Ceiling returns the smallest stored element with key >= x.
func (r *Array) Ceiling(x int64) (key, val int64, ok bool) { return r.a.Ceiling(x) }

// Rank returns the number of stored elements with key strictly less
// than x, in O(log S + log B) via the per-segment cardinality prefix
// sums the array maintains incrementally.
func (r *Array) Rank(x int64) int { return r.a.Rank(x) }

// Select returns the i-th smallest element (0-based), or ok=false when
// i is out of range.
func (r *Array) Select(i int) (key, val int64, ok bool) { return r.a.Select(i) }

// CountRange returns the number of elements with lo <= key <= hi
// without scanning them.
func (r *Array) CountRange(lo, hi int64) int { return r.a.CountRange(lo, hi) }
