package rma

import (
	"testing"

	"rma/internal/workload"
)

func TestCursorFullTraversal(t *testing.T) {
	a, err := New(WithSegmentCapacity(16), WithPageCapacity(64))
	if err != nil {
		t.Fatal(err)
	}
	const n = 2000
	for i := int64(0); i < n; i++ {
		if err := a.Insert(i*2, i); err != nil {
			t.Fatal(err)
		}
	}
	c := a.NewCursor(minKey, maxKey)
	if c.Remaining() != n {
		t.Fatalf("Remaining %d", c.Remaining())
	}
	count := int64(0)
	prev := int64(-1)
	for c.Next() {
		if c.Key() <= prev {
			t.Fatalf("cursor out of order at %d", c.Key())
		}
		if c.Value() != c.Key()/2 {
			t.Fatalf("value mismatch at %d", c.Key())
		}
		prev = c.Key()
		count++
	}
	if count != n {
		t.Fatalf("visited %d", count)
	}
	if c.Next() {
		t.Fatal("Next after exhaustion")
	}
	if c.Remaining() != 0 {
		t.Fatal("Remaining after exhaustion")
	}
}

const (
	minKey = -1 << 63
	maxKey = 1<<63 - 1
)

func TestCursorBoundedRange(t *testing.T) {
	a, err := New(WithSegmentCapacity(16), WithPageCapacity(64))
	if err != nil {
		t.Fatal(err)
	}
	g := workload.NewUniform(3, 10000)
	for i := 0; i < 5000; i++ {
		k := g.Next()
		if err := a.Insert(k, workload.ValueFor(k)); err != nil {
			t.Fatal(err)
		}
	}
	c := a.NewCursor(2500, 7500)
	wantCnt, _ := a.Sum(2500, 7500)
	got := 0
	for c.Next() {
		if c.Key() < 2500 || c.Key() > 7500 {
			t.Fatalf("key %d outside bounds", c.Key())
		}
		got++
	}
	if got != wantCnt {
		t.Fatalf("cursor visited %d, Sum says %d", got, wantCnt)
	}
}

func TestCursorEmpty(t *testing.T) {
	a, err := New()
	if err != nil {
		t.Fatal(err)
	}
	c := a.NewCursor(minKey, maxKey)
	if c.Next() {
		t.Fatal("Next on empty")
	}
	if err := a.Insert(5, 50); err != nil {
		t.Fatal(err)
	}
	c = a.NewCursor(6, 10)
	if c.Next() {
		t.Fatal("Next on empty range")
	}
}

// Merge-join: the use case cursors exist for.
func TestCursorMergeJoin(t *testing.T) {
	mk := func(keys []int64) *Array {
		a, err := New(WithSegmentCapacity(16), WithPageCapacity(64))
		if err != nil {
			t.Fatal(err)
		}
		for _, k := range keys {
			if err := a.Insert(k, k); err != nil {
				t.Fatal(err)
			}
		}
		return a
	}
	left := mk([]int64{1, 3, 5, 7, 9, 11})
	right := mk([]int64{3, 4, 5, 9, 10})
	lc := left.NewCursor(minKey, maxKey)
	rc := right.NewCursor(minKey, maxKey)

	var joined []int64
	lOK, rOK := lc.Next(), rc.Next()
	for lOK && rOK {
		switch {
		case lc.Key() < rc.Key():
			lOK = lc.Next()
		case lc.Key() > rc.Key():
			rOK = rc.Next()
		default:
			joined = append(joined, lc.Key())
			lOK = lc.Next()
			rOK = rc.Next()
		}
	}
	want := []int64{3, 5, 9}
	if len(joined) != len(want) {
		t.Fatalf("join = %v", joined)
	}
	for i := range want {
		if joined[i] != want[i] {
			t.Fatalf("join = %v, want %v", joined, want)
		}
	}
}
