package rma

import (
	"errors"
	"os"
	"path/filepath"
	"sort"
	"testing"
	"time"

	"rma/internal/vmem"
	"rma/internal/wal"
)

// Facade-level WAL integration: construction, recovery composition with
// checkpoints, the automatic scheduler, the fault matrix, and the torn
// corpora — everything through the public Sharded surface. The log's
// own format, group commit and fault mechanics are covered in
// internal/wal; these tests pin the wiring.

func walOpts(extra ...Option) []Option {
	base := []Option{
		WithSegmentCapacity(8),
		WithPageCapacity(64),
	}
	return append(base, extra...)
}

// newWALSharded builds a durable+WAL map rooted at dir.
func newWALSharded(t *testing.T, dir string, c WALConfig, extra ...Option) *Sharded {
	t.Helper()
	s, err := NewSharded(4, walOpts(append(extra, WithDurability(dir), WithWAL(c))...)...)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// checkContents asserts the map holds exactly want.
func checkContents(t *testing.T, s *Sharded, want map[int64]int64) {
	t.Helper()
	if err := s.Validate(); err != nil {
		t.Fatalf("recovered map invalid: %v", err)
	}
	if got := s.Size(); got != len(want) {
		t.Fatalf("size %d, want %d", got, len(want))
	}
	for k, v := range s.All() {
		wv, ok := want[k]
		if !ok {
			t.Fatalf("unexpected key %d", k)
		}
		if wv != v {
			t.Fatalf("key %d holds %d, want %d", k, v, wv)
		}
	}
}

// TestWALShardedRecovery covers the three recovery compositions: log
// only (no checkpoint ever published), checkpoint+log suffix, and a
// second generation of each.
func TestWALShardedRecovery(t *testing.T) {
	dir := t.TempDir()
	cfg := WALConfig{CheckpointInterval: -1, CheckpointWALBytes: -1}

	// Generation 1: writes but no checkpoint — the log alone (its
	// genesis record names the separators) must rebuild everything.
	s := newWALSharded(t, dir, cfg)
	ref := make(map[int64]int64)
	for i := int64(0); i < 500; i++ {
		if err := s.Insert(i*7, i); err != nil {
			t.Fatal(err)
		}
		ref[i*7] = i
	}
	for i := int64(0); i < 100; i++ {
		if _, err := s.Delete(i * 14); err != nil {
			t.Fatal(err)
		}
		delete(ref, i*14)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s, err := OpenSharded(dir, walOpts(WithWAL(cfg))...)
	if err != nil {
		t.Fatalf("recover from log only: %v", err)
	}
	checkContents(t, s, ref)

	// Generation 2: checkpoint, then more writes — recovery replays only
	// the suffix over the published round. Keys live in a range disjoint
	// from generation 1's (the map is a multiset; reusing a key would
	// add a second occurrence where the reference overwrites).
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 300; i++ {
		if err := s.Insert(100_000+i, -i); err != nil {
			t.Fatal(err)
		}
		ref[100_000+i] = -i
	}
	batch := []BatchOp{
		{Kind: OpPut, Key: 500_000, Val: 1},
		{Kind: OpPut, Key: 500_002, Val: 2},
		{Kind: OpDelete, Key: 100_000},
	}
	if _, err := s.ApplyBatch(batch); err != nil {
		t.Fatal(err)
	}
	ref[500_000], ref[500_002] = 1, 2
	delete(ref, 100_000)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s, err = OpenSharded(dir, walOpts(WithWAL(cfg))...)
	if err != nil {
		t.Fatalf("recover checkpoint+suffix: %v", err)
	}
	defer s.Close()
	checkContents(t, s, ref)
	// The recovered map must keep logging.
	if err := s.Insert(600_000, 6); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.WALRecords == 0 {
		t.Fatal("recovered map is not logging")
	}
}

// TestWALEmptyLogReopenKeepsLSNAboveFloor pins recovery's LSN seeding
// against the empty-log edge: a checkpoint's publish truncates every
// record-bearing sealed segment and the close-time drain rotates in a
// header-only active one, so the next open finds a log with zero
// surviving records. The reopened map must still assign fresh LSNs
// strictly above the persisted per-shard replay floors — seeding the
// counter from surviving records alone would hand out LSNs at or below
// the floors, and the recovery after that would silently skip the newly
// acked writes.
func TestWALEmptyLogReopenKeepsLSNAboveFloor(t *testing.T) {
	dir := t.TempDir()
	// SegmentBytes 1 clamps to the minimum, so every record-bearing
	// segment is past the rotation threshold and a header-only one
	// never is.
	cfg := WALConfig{Fsync: "never", SegmentBytes: 1, CheckpointInterval: -1, CheckpointWALBytes: -1}
	open := func() *Sharded {
		t.Helper()
		s, err := OpenSharded(dir, walOpts(WithWAL(cfg))...)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	ref := make(map[int64]int64)

	// Generation 1: writes only; the final drain rotates the last
	// records into a sealed segment.
	s := newWALSharded(t, dir, cfg)
	for i := int64(0); i < 50; i++ {
		if err := s.Insert(i, i); err != nil {
			t.Fatal(err)
		}
		ref[i] = i
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Generation 2: the checkpoint covers every logged record, so its
	// publish truncates all sealed segments; only the header-only
	// active one survives the close.
	s = open()
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	_, floor := s.LastCheckpoint()
	if floor == 0 {
		t.Fatal("checkpoint published no LSN floor")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	segs, err := filepath.Glob(filepath.Join(dir, "wal", "wal-*.seg"))
	if err != nil || len(segs) != 1 {
		t.Fatalf("want a single header-only segment after full truncation, have %v (%v)", segs, err)
	}

	// Generation 3: the reopened log holds zero records; fresh writes
	// must land strictly above the floor.
	s = open()
	if got := s.m.WAL().LastLSN(); got < floor {
		t.Fatalf("reopened log seeded LSN %d below the persisted floor %d", got, floor)
	}
	for i := int64(1000); i < 1050; i++ {
		if err := s.Insert(i, -i); err != nil {
			t.Fatal(err)
		}
		ref[i] = -i
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Generation 4: every acked write of generation 3 must replay.
	s = open()
	defer s.Close()
	checkContents(t, s, ref)
}

// TestWALSchedulerAutoCheckpoint drives the WAL-bytes threshold: under
// sustained writes the scheduler must start checkpoint rounds on its
// own and published rounds must truncate sealed segments.
func TestWALSchedulerAutoCheckpoint(t *testing.T) {
	dir := t.TempDir()
	s := newWALSharded(t, dir, WALConfig{
		Fsync:              "never",
		SegmentBytes:       2048,
		CheckpointWALBytes: 4096,
		CheckpointInterval: -1,
		SchedulerPeriod:    2 * time.Millisecond,
	}, WithBackgroundRebalancing(2))
	defer s.Close()

	deadline := time.Now().Add(30 * time.Second)
	var st Stats
	for i := int64(0); ; i++ {
		if err := s.Insert(i, i); err != nil {
			t.Fatal(err)
		}
		if i%64 == 0 {
			st = s.Stats()
			if st.AutoCheckpoints >= 2 && st.WALTruncations >= 1 {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("scheduler made no progress: %+v", st)
			}
		}
	}
	if st.WALRotations == 0 {
		t.Fatal("no segment rotations under 2 KiB segments")
	}
	if _, lsn := s.LastCheckpoint(); lsn == 0 {
		t.Fatal("published round did not advance the recovery LSN")
	}
}

// TestWALFaultMatrix injects a failure on every WAL edge through the
// facade and asserts the uniform contract: the write that hit the fault
// reports an error (or the background edge counts it), the
// corresponding Stats counter increments, and the store keeps serving
// with its recovery point intact.
func TestWALFaultMatrix(t *testing.T) {
	dir := t.TempDir()
	cfg := WALConfig{CheckpointInterval: -1, CheckpointWALBytes: -1, SegmentBytes: 1 << 20}
	s := newWALSharded(t, dir, cfg)
	defer s.Close()
	l := s.m.WAL()

	for i := int64(0); i < 100; i++ {
		if err := s.Insert(i, i); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}

	// Append fault: the write is rejected before staging.
	l.InjectFault(wal.FaultAppend, 1)
	if err := s.Insert(200, 200); !errors.Is(err, vmem.ErrFaultInjected) {
		t.Fatalf("append fault: got %v", err)
	}
	// Sync fault: the write's commit wave fails; Wait surfaces it.
	l.InjectFault(wal.FaultSync, 1)
	if err := s.Insert(201, 201); !errors.Is(err, vmem.ErrFaultInjected) {
		t.Fatalf("sync fault: got %v", err)
	}
	// Rotate fault: background edge — no writer error, counted, retried.
	l.InjectFault(wal.FaultRotate, 1)
	if err := s.Insert(202, 202); err != nil {
		t.Fatalf("rotate fault must not fail the writer: %v", err)
	}
	// Truncate fault: the next published round's truncation fails;
	// the round itself still publishes.
	l.InjectFault(wal.FaultTruncate, 1)
	if err := s.Checkpoint(); err != nil {
		t.Fatalf("checkpoint with truncate fault: %v", err)
	}

	st := s.Stats()
	if st.WALAppendFailures != 1 || st.WALSyncFailures != 1 {
		t.Fatalf("failure counters: %+v", st)
	}
	// The rotate fault fires lazily (rotation happens when a segment
	// fills); with 1 MiB segments it stays armed — disarm by injecting 0
	// is not needed, just check the store serves.
	for i := int64(300); i < 400; i++ {
		if err := s.Insert(i, i); err != nil {
			t.Fatalf("store must keep serving after faults: %v", err)
		}
	}
	if _, ok := s.Find(202); !ok {
		t.Fatal("write applied before background fault went missing")
	}
	if st.Checkpoints == 0 {
		t.Fatal("recovery point was not maintained across faults")
	}
}

// TestWALTruncateFaultCounts pins that an injected truncation failure
// increments the truncation-failure counter when a publish actually has
// sealed segments to remove.
func TestWALTruncateFaultCounts(t *testing.T) {
	dir := t.TempDir()
	s := newWALSharded(t, dir, WALConfig{
		Fsync: "never", SegmentBytes: 1024,
		CheckpointInterval: -1, CheckpointWALBytes: -1,
	})
	defer s.Close()

	for i := int64(0); i < 400; i++ {
		if err := s.Insert(i, i); err != nil {
			t.Fatal(err)
		}
	}
	if st := s.Stats(); st.WALRotations == 0 {
		t.Fatalf("expected rotations before truncation test: %+v", st)
	}
	s.m.WAL().InjectFault(wal.FaultTruncate, 1)
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.WALTruncateFailures != 1 {
		t.Fatalf("truncate failures = %d, want 1", st.WALTruncateFailures)
	}
	// The next publish retries and the dead segments go.
	if err := s.Insert(10_000, 1); err != nil {
		t.Fatal(err)
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.WALTruncations == 0 {
		t.Fatalf("truncation never succeeded: %+v", st)
	}
}

// TestWALTornTailRecovery cuts the log's physical tail at arbitrary
// byte offsets and asserts recovery yields an exact op prefix — the
// single-writer stream makes every cut land between or inside
// sequential records, so the recovered map must hold keys 0..M-1 for
// some M, never a gap.
func TestWALTornTailRecovery(t *testing.T) {
	const n = 300
	dir := t.TempDir()
	cfg := WALConfig{Fsync: "never", CheckpointInterval: -1, CheckpointWALBytes: -1}
	s := newWALSharded(t, dir, cfg)
	for i := int64(0); i < n; i++ {
		if err := s.Insert(i, i*3); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	segs, err := filepath.Glob(filepath.Join(dir, "wal", "wal-*.seg"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no segments: %v %v", segs, err)
	}
	sort.Strings(segs)
	lastRel, err := filepath.Rel(dir, segs[len(segs)-1])
	if err != nil {
		t.Fatal(err)
	}
	info, err := os.Stat(segs[len(segs)-1])
	if err != nil {
		t.Fatal(err)
	}
	// Each cut runs against a fresh copy of the pristine tree, so the
	// corpora stay independent.
	for _, cut := range []int64{1, 7, 19, info.Size() / 2, info.Size() - genesisGuess} {
		work := t.TempDir()
		copyTree(t, dir, work)
		last := filepath.Join(work, lastRel)
		if err := os.Truncate(last, info.Size()-cut); err != nil {
			t.Fatal(err)
		}
		s, err := OpenSharded(work, walOpts(WithWAL(cfg))...)
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		m := int64(s.Size())
		if m > n {
			t.Fatalf("cut %d: recovered %d ops, wrote %d", cut, m, n)
		}
		for i := int64(0); i < m; i++ {
			if v, ok := s.Find(i); !ok || v != i*3 {
				t.Fatalf("cut %d: recovered %d ops but op %d missing/wrong (%d,%v)", cut, m, i, v, ok)
			}
		}
		// Recovery truncated the torn bytes physically: the log serves
		// appends again.
		if err := s.Insert(int64(10_000+cut), 1); err != nil {
			t.Fatalf("cut %d: append after recovery: %v", cut, err)
		}
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// genesisGuess keeps the deepest cut from slicing into the segment
// header or the genesis record (those cases — a dropped segment, a
// truncated genesis — are covered in internal/wal).
const genesisGuess = 128

// copyTree copies the directory tree at src into dst (regular files
// only — the durability tree holds nothing else).
func copyTree(t *testing.T, src, dst string) {
	t.Helper()
	err := filepath.Walk(src, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(src, path)
		if err != nil {
			return err
		}
		out := filepath.Join(dst, rel)
		if info.IsDir() {
			return os.MkdirAll(out, 0o755)
		}
		b, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		return os.WriteFile(out, b, info.Mode())
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestWALBitFlipRecovery flips a byte mid-log: the corrupt record fails
// its CRC and recovery stops at the last intact one — again an exact
// prefix, and the map keeps serving.
func TestWALBitFlipRecovery(t *testing.T) {
	const n = 300
	dir := t.TempDir()
	cfg := WALConfig{Fsync: "never", CheckpointInterval: -1, CheckpointWALBytes: -1}
	s := newWALSharded(t, dir, cfg)
	for i := int64(0); i < n; i++ {
		if err := s.Insert(i, i); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	segs, err := filepath.Glob(filepath.Join(dir, "wal", "wal-*.seg"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no segments: %v %v", segs, err)
	}
	sort.Strings(segs)
	first := segs[0]
	b, err := os.ReadFile(first)
	if err != nil {
		t.Fatal(err)
	}
	// Flip past the header and genesis record so the log itself stays
	// openable; the flipped op record must not survive.
	off := 128
	if off >= len(b) {
		t.Skipf("segment too small (%d bytes) for a mid-log flip", len(b))
	}
	b[off] ^= 0x40
	if err := os.WriteFile(first, b, 0o644); err != nil {
		t.Fatal(err)
	}

	s, err = OpenSharded(dir, walOpts(WithWAL(cfg))...)
	if err != nil {
		t.Fatalf("recover after bit flip: %v", err)
	}
	defer s.Close()
	m := int64(s.Size())
	if m >= n {
		t.Fatalf("flip at %d went unnoticed: recovered all %d ops", off, m)
	}
	for i := int64(0); i < m; i++ {
		if v, ok := s.Find(i); !ok || v != i {
			t.Fatalf("recovered %d ops but op %d missing", m, i)
		}
	}
	if err := s.Insert(9999, 1); err != nil {
		t.Fatalf("append after bit-flip recovery: %v", err)
	}
}

// TestWALRequiresDurability pins the construction contract.
func TestWALRequiresDurability(t *testing.T) {
	if _, err := NewSharded(2, WithWAL(WALConfig{})); err == nil {
		t.Fatal("WithWAL without WithDurability must fail")
	}
	if _, err := NewSharded(2, WithDurability(t.TempDir()), WithWAL(WALConfig{Fsync: "sometimes"})); err == nil {
		t.Fatal("unknown fsync policy must fail")
	}
}
