package rma

import "testing"

// Constructor validation: a non-positive shard count is a caller bug,
// not a request for a silently serialized single-shard map.
func TestNewShardedValidation(t *testing.T) {
	for _, k := range []int{0, -3} {
		if _, err := NewSharded(k); err == nil {
			t.Errorf("NewSharded(%d) succeeded, want error", k)
		}
		if _, err := NewShardedFromSample(k, []int64{1, 2, 3}); err == nil {
			t.Errorf("NewShardedFromSample(%d) succeeded, want error", k)
		}
	}
	s, err := NewSharded(1)
	if err != nil {
		t.Fatal(err)
	}
	if s.NumShards() != 1 || len(s.Boundaries()) != 0 {
		t.Fatalf("NewSharded(1) = %d shards, boundaries %v", s.NumShards(), s.Boundaries())
	}
}
