package main

import "rma/internal/exp"

// shards runs the concurrent serving-layer experiment (aggregate put /
// batched put / get / merged scan throughput over a goroutines x shard
// count matrix) and, like hotpath, appends a labeled snapshot to the
// -json trajectory file. -shardmax 1 records the unsharded baseline
// alone (the "pre-sharding" serving datapoint).
func shards(p exp.Params) {
	p.ShardMax = *shardMax
	appendSnapshot(p, exp.Shards(p))
}
