package main

import "rma/internal/exp"

// shards runs the concurrent serving-layer experiment (aggregate put /
// batched put / get / merged scan throughput over a goroutines x shard
// count matrix) and, like hotpath, appends a labeled snapshot to the
// -json trajectory file. -shardmax 1 records the unsharded baseline
// alone (the "pre-sharding" serving datapoint).
func shards(p exp.Params) {
	p.ShardMax = *shardMax
	appendSnapshot(p, exp.Shards(p))
}

// putasync runs the per-put latency experiment (p50/p99 with the
// background rebalancer off and/or on, per -async) and appends a
// labeled snapshot like the other trajectory experiments.
func putasync(p exp.Params) {
	p.ShardMax = *shardMax
	p.Async = *asyncMode
	appendSnapshot(p, exp.PutAsync(p))
}

// durability runs the checkpoint/recovery economics experiment
// (full vs incremental checkpoint latency, recovery vs re-bulk-load,
// steady-state put overhead under periodic checkpoints) and appends a
// labeled snapshot like the other trajectory experiments.
func durability(p exp.Params) {
	appendSnapshot(p, exp.Durability(p))
}
