package main

import (
	"fmt"
	"sort"
	"time"

	"rma"
	"rma/internal/exp"
	"rma/internal/workload"
)

// backends drives every structure purely through the public OrderedMap /
// UpdatableMap interface: uniform inserts (updatable backends), point
// lookups, one full lazy iteration, 1% lazy range iterations, and the
// navigation + order-statistic queries. It is the multi-backend
// comparison the widened API exists for: the same loop runs against the
// RMA, the TPMA baseline, both trees and both static columns.
func backends(p exp.Params) {
	fmt.Fprintf(p.Out, "## backends: the OrderedMap surface, N=%d\n", p.N)
	fmt.Fprintf(p.Out, "# backend\tinsert.Mops\tlookup.Mops\tfullscan.Melts\trange1pct.Melts\tfloorceil.Mops\trankselect.Mops\tbytes/elt\n")

	keys := workload.Keys(workload.NewUniform(p.Seed, 0), p.N)

	mk := map[string]func() rma.OrderedMap{
		"rma-B128": func() rma.OrderedMap { return mustArr(rma.New()) },
		"tpma":     func() rma.OrderedMap { return mustArr(rma.NewTPMA()) },
		"abtree":   func() rma.OrderedMap { return rma.NewABTree(256) },
		"art":      func() rma.OrderedMap { return rma.NewARTTree(256) },
		"dense":    nil, // built from a sorted snapshot below
		"staticix": nil,
	}

	// Sorted snapshot for the static backends.
	sorted := append([]int64(nil), keys...)
	sortInt64(sorted)
	vals := append([]int64(nil), sorted...)

	var sink int64
	for _, name := range []string{"tpma", "abtree", "art", "rma-B128", "staticix", "dense"} {
		var m rma.OrderedMap
		var insElapsed time.Duration
		if ctor := mk[name]; ctor != nil {
			m = ctor()
			u := m.(rma.UpdatableMap)
			insElapsed = timeIt(func() {
				for _, k := range keys {
					if err := u.InsertKV(k, k); err != nil {
						panic(err)
					}
				}
			})
		} else if name == "dense" {
			m = rma.NewDense(sorted, vals)
		} else {
			m = rma.NewStaticIndexed(sorted, vals, 128)
		}

		rng := workload.NewRNG(p.Seed + 7)
		nLookups := p.N / 4
		lkElapsed := timeIt(func() {
			for i := 0; i < nLookups; i++ {
				v, _ := m.Find(keys[rng.Uint64n(uint64(len(keys)))])
				sink += v
			}
		})

		scElapsed := timeIt(func() {
			var s int64
			for _, v := range m.All() {
				s += v
			}
			sink += s
		})

		cnt := p.N / 100
		if cnt == 0 {
			cnt = 1
		}
		nRanges := 50
		var scanned int
		rgElapsed := timeIt(func() {
			for i := 0; i < nRanges; i++ {
				pos := int(rng.Uint64n(uint64(p.N - cnt)))
				for _, v := range m.Range(sorted[pos], sorted[pos+cnt-1]) {
					sink += v
					scanned++
				}
			}
		})

		nNav := p.N / 8
		nvElapsed := timeIt(func() {
			for i := 0; i < nNav; i++ {
				x := keys[rng.Uint64n(uint64(len(keys)))]
				k1, _, _ := m.Floor(x)
				k2, _, _ := m.Ceiling(x)
				sink += k1 + k2
			}
		})

		// Order statistics: O(n/B) on the unaugmented trees, so probe
		// proportionally fewer times there to keep runtimes bounded.
		nOrd := p.N / 8
		if name == "abtree" || name == "art" {
			nOrd = 2000
		}
		osElapsed := timeIt(func() {
			for i := 0; i < nOrd; i++ {
				sink += int64(m.Rank(keys[rng.Uint64n(uint64(len(keys)))]))
				k, _, _ := m.Select(int(rng.Uint64n(uint64(m.Size()))))
				sink += k
			}
		})

		insM := 0.0
		if insElapsed > 0 {
			insM = mops(p.N, insElapsed)
		}
		// Each navigation iteration issues two queries (Floor+Ceiling,
		// Rank+Select): report per-operation rates comparable to the
		// lookup column.
		fmt.Fprintf(p.Out, "%s\t%.2f\t%.2f\t%.1f\t%.1f\t%.2f\t%.2f\t%.1f\n",
			name, insM, mops(nLookups, lkElapsed), mops(m.Size(), scElapsed),
			mops(scanned, rgElapsed), mops(2*nNav, nvElapsed), mops(2*nOrd, osElapsed),
			float64(m.FootprintBytes())/float64(m.Size()))
	}
	_ = sink
}

func mustArr(a *rma.Array, err error) *rma.Array {
	if err != nil {
		panic(err)
	}
	return a
}

func timeIt(f func()) time.Duration {
	t0 := time.Now()
	f()
	return time.Since(t0)
}

func mops(n int, d time.Duration) float64 {
	if d <= 0 {
		return 0
	}
	return float64(n) / d.Seconds() / 1e6
}

func sortInt64(a []int64) {
	sort.Slice(a, func(i, j int) bool { return a[i] < a[j] })
}
