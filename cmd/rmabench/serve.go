package main

import (
	"encoding/json"
	"fmt"
	"net"
	"os"
	"time"

	"rma"
	"rma/internal/exp"
	"rma/internal/loadgen"
	"rma/internal/server"
)

// serve measures the full serving stack: loadgen's closed-loop client
// pool driving the YCSB-style mixes A–E over RESP against rmaserve's
// engine. With -serveaddr it dials an externally running rmaserve (the
// nightly soak path: real TCP, durability on); without it, each mix
// runs against a fresh in-process store behind a loopback listener
// (lock-free reads + background rebalancing on) so CI gets a
// deterministic fixture per mix. It lives in package main rather than
// internal/exp because it needs the rma facade, which exp cannot
// import (bench_test.go is an in-package rma test importing exp).
//
// With -json/-label it appends per-mix, per-op-class HotpathResults
// (throughput, mean, p50/p99/p999) to the BENCH trajectory; with
// -thresholds it enforces SERVE_THRESHOLDS.json and exits nonzero on
// any error reply or p99 beyond the checked-in ceiling — the soak
// job's regression gate.
func serve(p exp.Params) {
	fmt.Fprintf(p.Out, "## serve: RESP serving stack, mixes A-E, clients=%d duration=%v keys=%d\n",
		cval(p.Clients, 4), dval(p.Duration, time.Second), p.N)
	fmt.Fprintf(p.Out, "# mix\tclass\tops\terrs\tops/s\tmean_ns\tp50_ns\tp99_ns\tp999_ns\n")

	var results []exp.HotpathResult
	external := p.ServeAddr != ""
	for i, mix := range loadgen.Mixes() {
		res, err := runMix(p, mix, external && i > 0)
		if err != nil {
			fmt.Fprintln(os.Stderr, "rmabench: serve:", err)
			os.Exit(1)
		}
		for _, class := range loadgen.Classes {
			cr, ok := res.PerClass[class]
			if !ok {
				continue
			}
			opsPerSec := float64(cr.Ops) / res.Elapsed.Seconds()
			fmt.Fprintf(p.Out, "%s\t%s\t%d\t%d\t%.0f\t%d\t%d\t%d\t%d\n",
				mix.Name, class, cr.Ops, cr.Errors, opsPerSec,
				cr.Mean.Nanoseconds(), cr.P50.Nanoseconds(),
				cr.P99.Nanoseconds(), cr.P999.Nanoseconds())
			results = append(results, exp.HotpathResult{
				Series:    "serve-" + mix.Name + "-" + class,
				Layout:    "clustered",
				Rebalance: "serve",
				Ops:       int(cr.Ops),
				NsPerOp:   float64(cr.Mean.Nanoseconds()),
				P50Ns:     float64(cr.P50.Nanoseconds()),
				P99Ns:     float64(cr.P99.Nanoseconds()),
				P999Ns:    float64(cr.P999.Nanoseconds()),
				OpsPerSec: opsPerSec,
				Errors:    cr.Errors,
				Clients:   res.Clients,
			})
		}
	}
	appendSnapshot(p, results)

	if *thresholds != "" {
		if !checkThresholds(*thresholds, results, os.Stderr) {
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "rmabench: serve within thresholds (%s)\n", *thresholds)
	}
}

// runMix runs one mix. In-process mode builds a fresh store + server
// per mix; external mode reuses the running server (skipPreload after
// the first mix — SET is an upsert, so the key range stays [0, N) plus
// whatever the previous mixes inserted).
func runMix(p exp.Params, mix loadgen.Mix, skipPreload bool) (loadgen.Result, error) {
	opts := loadgen.Options{
		Clients:     p.Clients,
		Duration:    p.Duration,
		Seed:        p.Seed,
		Keys:        p.N,
		SkipPreload: skipPreload,
	}
	if p.ServeAddr != "" {
		opts.Dial = func() (net.Conn, error) { return net.Dial("tcp", p.ServeAddr) }
		return loadgen.Run(opts, mix)
	}

	db, err := rma.NewSharded(8, rma.WithLockFreeReads(), rma.WithBackgroundRebalancing(-1))
	if err != nil {
		return loadgen.Result{}, err
	}
	defer db.Close()
	srv := server.New(db, server.Config{})
	defer srv.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return loadgen.Result{}, err
	}
	go srv.Serve(ln)
	addr := ln.Addr().String()
	opts.Dial = func() (net.Conn, error) { return net.Dial("tcp", addr) }
	return loadgen.Run(opts, mix)
}

// serveThresholds is the SERVE_THRESHOLDS.json schema: per series
// ("serve-<mix>-<class>"), the ceilings the soak gate enforces. Zero
// values mean unchecked (except errors, which are always checked).
type serveThresholds struct {
	Comment string `json:"comment"`
	Series  map[string]struct {
		MaxP99Ns  float64 `json:"max_p99_ns"`
		MinOpsSec float64 `json:"min_ops_per_sec"`
	} `json:"series"`
}

// checkThresholds enforces the checked-in ceilings against the run's
// results: any error reply fails, and any series listed in the file
// fails when its p99 exceeds (or throughput undercuts) the bound.
func checkThresholds(path string, results []exp.HotpathResult, w *os.File) bool {
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintln(w, "rmabench: thresholds:", err)
		return false
	}
	var th serveThresholds
	if err := json.Unmarshal(data, &th); err != nil {
		fmt.Fprintln(w, "rmabench: thresholds:", err)
		return false
	}
	ok := true
	for _, r := range results {
		if r.Errors > 0 {
			fmt.Fprintf(w, "rmabench: FAIL %s: %d error replies (want 0)\n", r.Series, r.Errors)
			ok = false
		}
		t, listed := th.Series[r.Series]
		if !listed {
			continue
		}
		if t.MaxP99Ns > 0 && r.P99Ns > t.MaxP99Ns {
			fmt.Fprintf(w, "rmabench: FAIL %s: p99 %.0fns > ceiling %.0fns\n", r.Series, r.P99Ns, t.MaxP99Ns)
			ok = false
		}
		if t.MinOpsSec > 0 && r.OpsPerSec < t.MinOpsSec {
			fmt.Fprintf(w, "rmabench: FAIL %s: %.0f ops/s < floor %.0f\n", r.Series, r.OpsPerSec, t.MinOpsSec)
			ok = false
		}
	}
	return ok
}

func cval(v, def int) int {
	if v <= 0 {
		return def
	}
	return v
}

func dval(v, def time.Duration) time.Duration {
	if v <= 0 {
		return def
	}
	return v
}
