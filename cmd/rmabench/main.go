// Command rmabench regenerates the figures of "Packed Memory Arrays –
// Rewired" (De Leo & Boncz, ICDE 2019) at a configurable scale.
//
// Usage:
//
//	rmabench -exp fig14 -n 1048576
//	rmabench -exp all -n 262144 -out results.txt
//
// Experiments: fig01a fig01b fig01c fig10 fig11a fig11b fig12 fig13a
// fig13b fig14 backends hotpath shards, or "all". Output is TSV with one
// block per figure; the series names match the paper's legends.
// EXPERIMENTS.md interprets the shapes against the paper's reported
// results. The "backends" experiment is not a paper figure: it drives
// every structure purely through the public OrderedMap interface —
// inserts, lookups, lazy iteration, navigation and order statistics — to
// compare the full ordered-map surface across backends. The "hotpath"
// experiment tracks the repo's own perf trajectory (insert/lookup/scan
// ns/op and allocs/op on every layout x rebalance corner); the "lookup"
// experiment tracks the read path specifically (point-get, miss-get,
// GetBatch and seek-then-scan over a layout x size matrix); the "shards"
// experiment tracks the concurrent serving layer (aggregate put/batched
// put/get/merged-scan throughput over a goroutines x shard-count
// matrix, capped by -shardmax). With -json FILE -label NAME both append
// a machine-readable snapshot to the checked-in BENCH_hotpath.json.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"time"

	"rma/internal/exp"
)

var experiments = map[string]func(exp.Params){
	"fig01a":     exp.Fig01a,
	"fig01b":     exp.Fig01b,
	"fig01c":     exp.Fig01c,
	"fig10":      exp.Fig10,
	"fig11a":     exp.Fig11a,
	"fig11b":     exp.Fig11b,
	"fig12":      exp.Fig12,
	"fig13a":     exp.Fig13a,
	"fig13b":     exp.Fig13b,
	"fig14":      exp.Fig14,
	"backends":   backends,
	"hotpath":    hotpath,
	"lookup":     lookup,
	"shards":     shards,
	"putasync":   putasync,
	"durability": durability,
	"serve":      serve,
}

// Trajectory flags (hotpath and shards): where to append the JSON
// snapshot, plus the shards matrix cap.
var (
	jsonPath  = flag.String("json", "", "hotpath/shards: append a snapshot to this JSON trajectory file")
	jsonLabel = flag.String("label", "dev", "hotpath/shards: label for the JSON snapshot")
	shardMax  = flag.Int("shardmax", 8, "shards: largest shard count in the sweep (1 = unsharded baseline only)")
	asyncMode = flag.String("async", "both", "putasync: rebalancer modes to measure (off|on|both)")
	// Serving flags ("serve" experiment): closed-loop pool size, per-mix
	// measured duration, an external rmaserve to dial instead of the
	// in-process loopback server, and the soak gate's threshold file.
	clients    = flag.Int("clients", 4, "serve: closed-loop client pool size")
	duration   = flag.Duration("duration", time.Second, "serve: measured duration per mix")
	serveAddr  = flag.String("serveaddr", "", "serve: dial this rmaserve address instead of serving in-process")
	thresholds = flag.String("thresholds", "", "serve: enforce this SERVE_THRESHOLDS.json file (exit 1 on violation)")
)

func main() {
	var (
		name = flag.String("exp", "all", "experiment id (fig01a..fig14) or 'all'")
		n    = flag.Int("n", 1<<20, "final cardinality (paper used 2^30)")
		seed = flag.Uint64("seed", 42, "base RNG seed")
		out  = flag.String("out", "", "output file (default stdout)")
	)
	flag.Parse()

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "rmabench:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}

	p := exp.Params{N: *n, Seed: *seed, Out: w,
		Clients: *clients, Duration: *duration, ServeAddr: *serveAddr}

	var names []string
	if *name == "all" {
		for k := range experiments {
			names = append(names, k)
		}
		sort.Strings(names)
	} else {
		if _, ok := experiments[*name]; !ok {
			fmt.Fprintf(os.Stderr, "rmabench: unknown experiment %q (have:", *name)
			for k := range experiments {
				fmt.Fprintf(os.Stderr, " %s", k)
			}
			fmt.Fprintln(os.Stderr, ")")
			os.Exit(2)
		}
		names = []string{*name}
	}

	for _, k := range names {
		t0 := time.Now()
		experiments[k](p)
		fmt.Fprintf(w, "# %s completed in %v (N=%d, seed=%d)\n\n", k, time.Since(t0).Round(time.Millisecond), p.N, p.Seed)
	}
}
