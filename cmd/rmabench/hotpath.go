package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"rma/internal/exp"
)

// hotpathSnapshot is one labeled run of the hotpath experiment. The
// checked-in BENCH_hotpath.json is an append-only array of these: the
// perf trajectory every PR extends and is held to.
type hotpathSnapshot struct {
	Label   string              `json:"label"`
	Date    string              `json:"date"`
	N       int                 `json:"n"`
	Seed    uint64              `json:"seed"`
	GoOS    string              `json:"goos"`
	GoArch  string              `json:"goarch"`
	Results []exp.HotpathResult `json:"results"`
}

// hotpath runs the experiment and, when -json is set, appends the
// snapshot to the JSON trajectory file (creating it if absent).
func hotpath(p exp.Params) {
	appendSnapshot(p, exp.Hotpath(p))
}

// appendSnapshot appends a labeled result set to the -json trajectory
// file (a no-op when -json is unset). Shared by the hotpath and shards
// experiments so both extend the same BENCH_hotpath.json history.
func appendSnapshot(p exp.Params, results []exp.HotpathResult) {
	if *jsonPath == "" {
		return
	}
	var trajectory []hotpathSnapshot
	data, err := os.ReadFile(*jsonPath)
	switch {
	case err == nil:
		if err := json.Unmarshal(data, &trajectory); err != nil {
			fmt.Fprintf(os.Stderr, "rmabench: %s exists but is not a trajectory array: %v\n", *jsonPath, err)
			os.Exit(1)
		}
	case !os.IsNotExist(err):
		// Anything but a missing file must not silently truncate the
		// append-only trajectory.
		fmt.Fprintln(os.Stderr, "rmabench:", err)
		os.Exit(1)
	}
	trajectory = append(trajectory, hotpathSnapshot{
		Label:   *jsonLabel,
		Date:    time.Now().UTC().Format("2006-01-02"),
		N:       p.N,
		Seed:    p.Seed,
		GoOS:    runtime.GOOS,
		GoArch:  runtime.GOARCH,
		Results: results,
	})
	data, err = json.MarshalIndent(trajectory, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "rmabench:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*jsonPath, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "rmabench:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "rmabench: appended %q snapshot to %s\n", *jsonLabel, *jsonPath)
}
