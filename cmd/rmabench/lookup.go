package main

import "rma/internal/exp"

// lookup runs the read-path experiment (point-get, miss-get, GetBatch,
// seek-then-scan over the layout × size matrix) and, when -json is set,
// appends the snapshot to the shared BENCH_hotpath.json trajectory.
func lookup(p exp.Params) {
	appendSnapshot(p, exp.Lookup(p))
}
