// Command rmainspect loads a workload into an RMA (or a baseline
// configuration) and dumps its internal anatomy: geometry, density
// profile per calibrator level, operation counters and memory breakdown.
// It exists for debugging and for studying how the structure reacts to a
// distribution.
//
// Usage:
//
//	rmainspect -n 1000000 -dist zipf -alpha 1.5 -b 128
package main

import (
	"flag"
	"fmt"
	"os"

	"rma/internal/calibrator"
	"rma/internal/core"
	"rma/internal/workload"
)

func main() {
	var (
		n        = flag.Int("n", 1<<20, "elements to insert")
		dist     = flag.String("dist", "uniform", "distribution: uniform | zipf | sequential")
		alpha    = flag.Float64("alpha", 1.0, "zipf skew factor")
		b        = flag.Int("b", 128, "segment capacity B")
		seed     = flag.Uint64("seed", 42, "RNG seed")
		scanTh   = flag.Bool("st", false, "use scan-oriented thresholds")
		adaptive = flag.Bool("adaptive", true, "adaptive rebalancing")
	)
	flag.Parse()

	cfg := core.DefaultConfig()
	cfg.SegmentSlots = *b
	if cfg.PageSlots < 2**b {
		cfg.PageSlots = 2 * *b
	}
	if *scanTh {
		cfg.Thresholds = calibrator.ScanOriented()
	}
	if !*adaptive {
		cfg.Adaptive = core.AdaptiveOff
	}

	a, err := core.New(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rmainspect:", err)
		os.Exit(1)
	}

	var g workload.Generator
	switch *dist {
	case "uniform":
		g = workload.NewUniform(*seed, 0)
	case "zipf":
		g = workload.NewZipf(*seed, *alpha, workload.ZipfRange, true)
	case "sequential":
		g = workload.NewSequential(0, 1)
	default:
		fmt.Fprintf(os.Stderr, "rmainspect: unknown distribution %q\n", *dist)
		os.Exit(2)
	}

	for i := 0; i < *n; i++ {
		if err := a.Insert(g.Next(), int64(i)); err != nil {
			fmt.Fprintln(os.Stderr, "rmainspect: insert:", err)
			os.Exit(1)
		}
	}

	if err := a.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, "rmainspect: INVARIANT VIOLATION:", err)
		os.Exit(1)
	}

	s := a.Stats()
	fmt.Printf("geometry:\n")
	fmt.Printf("  elements        %12d\n", a.Size())
	fmt.Printf("  capacity        %12d slots\n", a.Capacity())
	fmt.Printf("  segments        %12d x B=%d\n", a.NumSegments(), a.SegmentSlots())
	fmt.Printf("  density         %12.4f\n", a.Density())
	fmt.Printf("  footprint       %12.2f MB (%.2f bytes/elt; dense = 16)\n",
		float64(a.FootprintBytes())/(1<<20), float64(a.FootprintBytes())/float64(a.Size()))
	fmt.Printf("counters:\n")
	fmt.Printf("  rebalances      %12d (%d adaptive)\n", s.Rebalances, s.AdaptiveRebalances)
	fmt.Printf("  rebal elements  %12d (%.2f per insert)\n", s.RebalancedElements,
		float64(s.RebalancedElements)/float64(s.Inserts))
	fmt.Printf("  element copies  %12d\n", s.ElementCopies)
	fmt.Printf("  page swaps      %12d\n", s.PageSwaps)
	fmt.Printf("  resizes         %12d (%d grows, %d shrinks)\n", s.Resizes, s.Grows, s.Shrinks)
	fmt.Printf("  max window      %12d segments\n", s.MaxWindowSegments)

	// Density histogram across segments (16 buckets).
	var hist [16]int
	for seg := 0; seg < a.NumSegments(); seg++ {
		d := a.SegmentDensity(seg)
		bucket := int(d * 16)
		if bucket > 15 {
			bucket = 15
		}
		hist[bucket]++
	}
	fmt.Printf("segment density histogram:\n")
	for i, c := range hist {
		fmt.Printf("  %4.2f-%4.2f %8d ", float64(i)/16, float64(i+1)/16, c)
		stars := c * 50 / a.NumSegments()
		for j := 0; j < stars; j++ {
			fmt.Print("*")
		}
		fmt.Println()
	}
}
