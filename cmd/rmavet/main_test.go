package main

import (
	"path/filepath"
	"testing"

	"rma/internal/analyzers/noalloc"
	"rma/internal/analyzers/rig"
)

// loadRepo loads the real module once per test binary.
func loadRepo(t *testing.T) (string, *rig.Module) {
	t.Helper()
	root, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	m, err := rig.Load(root)
	if err != nil {
		t.Fatal(err)
	}
	return root, m
}

// TestRepoClean runs the full analyzer suite over this repository and
// demands zero findings: the contracts rmavet enforces must hold on the
// code that ships. A failure here is either a real contract violation
// or a missing //rma: annotation — both belong in the diff that caused
// them.
func TestRepoClean(t *testing.T) {
	_, m := loadRepo(t)
	diags, err := rig.Run(m, suite)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("%s: %s [%s]", m.Fset.Position(d.Pos), d.Message, d.Analyzer)
	}
}

// TestNoallocClosure pins the shape of the //rma:noalloc closure: the
// roots named in PERFORMANCE.md must be present, and the closure must
// stay big enough that an accidentally-dropped directive (a doc-comment
// rewrite eating the annotation) is caught even while the analyzers
// themselves keep passing vacuously.
func TestNoallocClosure(t *testing.T) {
	_, m := loadRepo(t)
	closure := noalloc.Closure(m)
	byName := make(map[string]bool, len(closure))
	for _, cf := range closure {
		byName[cf.Name] = true
	}
	for _, want := range []string{
		"(*rma/internal/core.Array).Insert",
		"(*rma/internal/core.Array).Delete",
		"(*rma/internal/core.Array).FindBatch",
		"(*rma/internal/core.Walker).SeekGE",
		"(*rma/internal/core.Walker).Next",
		"(*rma/internal/detector.Detector).Marks",
		"rma/internal/core.swarFindEq",
	} {
		if !byName[want] {
			t.Errorf("%s missing from the //rma:noalloc closure", want)
		}
	}
	if len(closure) < 50 {
		t.Errorf("closure has %d functions, expected at least 50 — did a //rma:noalloc directive go missing?", len(closure))
	}
}

// TestEscapeGateClean runs the compiler-backed escape gate over the
// repository: no heap escape may land in the //rma:noalloc closure on a
// line the annotations do not excuse. The diagnostics replay from the
// build cache, so repeat runs are cheap.
func TestEscapeGateClean(t *testing.T) {
	if testing.Short() {
		t.Skip("escape gate rebuilds the module with -gcflags=-m -l")
	}
	root, m := loadRepo(t)
	n, err := escapeGate(root, m)
	if err != nil {
		t.Fatal(err)
	}
	if n > 0 {
		t.Errorf("escape gate reported %d finding(s); run `go run ./cmd/rmavet -escapes` for details", n)
	}
}
