// Command rmavet machine-checks the contracts this repo otherwise only
// states in prose: the shard lock discipline (lockcheck), the
// steady-state allocation-free hot paths (noalloc), the confinement and
// page lifecycle of unsafe virtual memory (unsafecheck), and the
// BENCH_hotpath.json schema (benchguard). See STATIC_ANALYSIS.md.
//
// Usage:
//
//	rmavet [-dir path]           run the analyzer suite over the module
//	rmavet [-dir path] -escapes  run the escape-analysis regression gate
//
// The escape gate compiles the module with -gcflags=-m and fails if the
// compiler reports a heap escape inside the //rma:noalloc call closure
// on a line the annotations do not excuse — the backstop for the edges
// static analysis cannot follow (dynamic dispatch, compiler-version
// drift in escape analysis).
//
// Exit codes: 0 clean, 1 findings, 2 operational failure (load or build
// error, analyzer bug).
package main

import (
	"bufio"
	"bytes"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"

	"rma/internal/analyzers/benchguard"
	"rma/internal/analyzers/lockcheck"
	"rma/internal/analyzers/noalloc"
	"rma/internal/analyzers/rig"
	"rma/internal/analyzers/unsafecheck"
)

var suite = []*rig.Analyzer{
	lockcheck.Analyzer,
	noalloc.Analyzer,
	unsafecheck.Analyzer,
	benchguard.Analyzer,
}

func main() {
	dir := flag.String("dir", ".", "module root to analyze")
	escapes := flag.Bool("escapes", false,
		"run the escape-analysis regression gate instead of the analyzer suite")
	flag.Parse()

	root, err := filepath.Abs(*dir)
	if err != nil {
		fatal(err)
	}
	m, err := rig.Load(root)
	if err != nil {
		fatal(err)
	}

	var findings int
	if *escapes {
		findings, err = escapeGate(root, m)
	} else {
		findings, err = analyze(root, m)
	}
	if err != nil {
		fatal(err)
	}
	if findings > 0 {
		fmt.Fprintf(os.Stderr, "rmavet: %d finding(s)\n", findings)
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rmavet:", err)
	os.Exit(2)
}

// analyze runs the analyzer suite and prints one line per finding.
func analyze(root string, m *rig.Module) (int, error) {
	diags, err := rig.Run(m, suite)
	if err != nil {
		return 0, err
	}
	for _, d := range diags {
		pos := m.Fset.Position(d.Pos)
		fmt.Printf("%s:%d:%d: %s [%s]\n",
			relPath(root, pos.Filename), pos.Line, pos.Column, d.Message, d.Analyzer)
	}
	return len(diags), nil
}

// escapeLine matches one file-positioned compiler -m diagnostic.
var escapeLine = regexp.MustCompile(`^(.+\.go):(\d+):\d+: (.*)$`)

// escapeGate recompiles the module with escape-analysis diagnostics on
// and reports every heap escape landing inside the //rma:noalloc call
// closure on a line the annotations do not excuse.
func escapeGate(root string, m *rig.Module) (int, error) {
	closure := noalloc.Closure(m)
	if len(closure) == 0 {
		return 0, fmt.Errorf("escape gate: no //rma:noalloc functions found")
	}
	byFile := make(map[string][]noalloc.ClosureFunc)
	for _, cf := range closure {
		byFile[cf.File] = append(byFile[cf.File], cf)
	}

	// The -gcflags pattern scopes the flags to module packages; the
	// compiler replays the diagnostics from the build cache on repeat
	// runs. -l disables inlining so every escape is reported at its true
	// source line — with inlining on, a callee's escape is attributed to
	// the call site, detaching it from the //rma: marker that excuses it.
	// Escape analysis itself is interprocedural either way (parameter
	// leak summaries), so -l only changes attribution, not coverage.
	cmd := exec.Command("go", "build", "-gcflags=rma/...=-m -l", "./...")
	cmd.Dir = root
	var out bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &out
	if err := cmd.Run(); err != nil {
		return 0, fmt.Errorf("escape gate: go build -gcflags=-m: %v\n%s", err, out.String())
	}

	findings := 0
	sc := bufio.NewScanner(&out)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		mm := escapeLine.FindStringSubmatch(sc.Text())
		if mm == nil {
			continue
		}
		msg := mm[3]
		if !strings.Contains(msg, "escapes to heap") && !strings.Contains(msg, "moved to heap") {
			continue
		}
		file := mm[1]
		if !filepath.IsAbs(file) {
			file = filepath.Join(root, file)
		}
		line, _ := strconv.Atoi(mm[2])
		for _, cf := range byFile[file] {
			if line < cf.StartLine || line > cf.EndLine || cf.Exempt[line] {
				continue
			}
			fmt.Printf("%s:%d: %s in //rma:noalloc closure function %s [escapes]\n",
				relPath(root, file), line, msg, cf.Name)
			findings++
			break
		}
	}
	if err := sc.Err(); err != nil {
		return 0, err
	}
	if findings == 0 {
		fmt.Fprintf(os.Stderr, "rmavet: escape gate clean (%d functions in the //rma:noalloc closure)\n",
			len(closure))
	}
	return findings, nil
}

// relPath shortens an absolute position path for display, falling back
// to the absolute form when the file lies outside the module root.
func relPath(root, file string) string {
	if rel, err := filepath.Rel(root, file); err == nil && !strings.HasPrefix(rel, "..") {
		return rel
	}
	return file
}
