// Command rmaserve exposes an rma.Sharded store over the RESP (Redis)
// protocol so stock Redis clients — and this repo's own loadgen — can
// drive the engine over a network. The command surface, the pipelined
// batching semantics, and the per-command consistency guarantees are
// documented in SERVING.md.
//
// Usage:
//
//	rmaserve -addr :6380 -shards 8 -async -1 -lockfree -dur /var/lib/rma -wal
//
// The server stops on SIGINT/SIGTERM or on a client SHUTDOWN command;
// either way it drains connections, flushes the store's deferred
// rebalancing windows, checkpoints (when durability is on), and closes
// the store cleanly.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"rma"
	"rma/internal/server"
)

func main() {
	var (
		addr     = flag.String("addr", ":6380", "listen address (host:port)")
		shards   = flag.Int("shards", 8, "shard count (power of two)")
		async    = flag.Int("async", 0, "background rebalancing workers (0 = off, <0 = one per CPU)")
		lockfree = flag.Bool("lockfree", false, "serve point reads lock-free (seqlock + epoch reclamation)")
		durDir   = flag.String("dur", "", "durability directory (empty = in-memory only)")
		useWAL   = flag.Bool("wal", false, "write-ahead log: every acked write is durable before its reply (requires -dur)")
		fsync    = flag.String("fsync", "always", "WAL fsync policy: always, everysec, or never")
		pipeline = flag.Int("pipeline", 0, "max commands coalesced per batch (0 = default 256)")
	)
	flag.Parse()

	var opts []rma.Option
	if *async != 0 {
		opts = append(opts, rma.WithBackgroundRebalancing(*async))
	}
	if *lockfree {
		opts = append(opts, rma.WithLockFreeReads())
	}
	if *durDir != "" {
		opts = append(opts, rma.WithDurability(*durDir))
	}
	if *useWAL {
		if *durDir == "" {
			fmt.Fprintln(os.Stderr, "rmaserve: -wal requires -dur")
			os.Exit(2)
		}
		// Scheduler thresholds stay at the WALConfig defaults (checkpoint
		// every minute or 64 MiB of live log); the pool from -async drives
		// them, so pair -wal with -async for automatic checkpoints.
		opts = append(opts, rma.WithWAL(rma.WALConfig{Fsync: *fsync}))
	}

	// A durability dir with a published checkpoint is recovered, not
	// re-created (re-creating would discard it); the shard boundaries
	// then come from the manifest and -shards is ignored. An empty or
	// fresh dir starts a new store that checkpoints into it.
	var db *rma.Sharded
	var err error
	if *durDir != "" {
		db, err = rma.OpenSharded(*durDir, opts...)
		switch {
		case err == nil:
			fmt.Fprintf(os.Stderr, "rmaserve: recovered %d keys from %q (-shards ignored)\n",
				db.Size(), *durDir)
		case errors.Is(err, rma.ErrNoCheckpoint):
			db, err = rma.NewSharded(*shards, opts...)
		}
	} else {
		db, err = rma.NewSharded(*shards, opts...)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "rmaserve:", err)
		os.Exit(1)
	}

	srv := server.New(db, server.Config{MaxPipeline: *pipeline})

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	done := make(chan error, 1)
	go func() { done <- srv.ListenAndServe(*addr) }()
	fmt.Fprintf(os.Stderr, "rmaserve: listening on %s (shards=%d async=%d lockfree=%v dur=%q wal=%v fsync=%s)\n",
		*addr, *shards, *async, *lockfree, *durDir, *useWAL, *fsync)

	var serveErr error
	select {
	case s := <-sig:
		fmt.Fprintf(os.Stderr, "rmaserve: %v, shutting down\n", s)
	case <-srv.Shutdown():
		fmt.Fprintln(os.Stderr, "rmaserve: SHUTDOWN command, shutting down")
	case serveErr = <-done:
		// Listener failed (bad addr, port in use): fall through to
		// close the store, then report.
	}

	srv.Close()
	st := srv.Stats()
	// The final checkpoint is what makes a clean shutdown resumable:
	// Close alone releases the files without persisting post-checkpoint
	// state. A durable server that cannot publish its exit checkpoint
	// must not exit 0.
	if db.Durable() {
		if err := db.Checkpoint(); err != nil {
			fmt.Fprintln(os.Stderr, "rmaserve: exit checkpoint:", err)
			db.Close()
			os.Exit(1)
		}
	}
	if err := db.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "rmaserve: store close:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "rmaserve: served %d connections, %d commands (%d errors)\n",
		st.Connections, st.Commands, st.Errors)
	if serveErr != nil {
		fmt.Fprintln(os.Stderr, "rmaserve:", serveErr)
		os.Exit(1)
	}
}
