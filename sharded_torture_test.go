package rma

import (
	"os"
	"sort"
	"strconv"
	"sync"
	"testing"

	"rma/internal/workload"
)

// Randomized concurrent torture tests for the sharded serving layer.
//
// The verification strategy makes exact checking possible without a
// global lock around the system under test: every goroutine owns a
// disjoint key stripe (key % G == g), so its operations commute with
// everyone else's. Against its own stripe a goroutine checks results
// exactly (its keys are mutated by nobody else); against the whole map
// it checks the invariants that survive concurrent interleaving —
// global iteration order, bounds on navigation answers, lower bounds
// on counts. A mutex-wrapped reference multiset mirrors every write,
// and after the goroutines join, the full query surface is compared
// against it with the same checkQueries used by the single-threaded
// differential tests. Run under -race in CI.

// lockedRef is the mutex-wrapped reference: a multiset of keys.
type lockedRef struct {
	mu     sync.Mutex
	counts map[int64]int
}

func (r *lockedRef) insert(k int64) {
	r.mu.Lock()
	r.counts[k]++
	r.mu.Unlock()
}

func (r *lockedRef) delete(k int64) {
	r.mu.Lock()
	if r.counts[k] > 0 {
		r.counts[k]--
	}
	r.mu.Unlock()
}

// sortedKeys flattens the multiset into the sorted key slice the
// refModel wants.
func (r *lockedRef) sortedKeys() []int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	var keys []int64
	for k, c := range r.counts {
		for i := 0; i < c; i++ {
			keys = append(keys, k)
		}
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

const (
	tortureG          = 8     // goroutines (>= 4 per the acceptance bar)
	tortureKeySpace   = 4_096 // small enough to hammer duplicates and boundaries
	tortureCheckEvery = 1_000 // cross-surface probe cadence
)

// tortureOpsPerG is 16k by default (8 * 16k = 128k ops total); the
// nightly CI workflow multiplies it via RMA_TORTURE_SCALE (4x there).
var tortureOpsPerG = 16_000 * tortureScale()

func tortureScale() int {
	if s := os.Getenv("RMA_TORTURE_SCALE"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 0 {
			return n
		}
	}
	return 1
}

// tortureStripeKey maps a per-goroutine draw to the goroutine's stripe.
func tortureStripeKey(g int, raw uint64) int64 {
	return int64(raw%(tortureKeySpace/tortureG))*tortureG + int64(g)
}

func TestShardedConcurrentDifferential(t *testing.T) {
	// Boundaries learned from a sample of the torture key space, so the
	// stripes cross every shard boundary constantly.
	sample := make([]int64, 256)
	for i := range sample {
		sample[i] = int64(i) * tortureKeySpace / int64(len(sample))
	}
	// The background rebalancer runs throughout: writers defer their
	// policy rebalances to the maintenance pool while the differential
	// checks assert exactness mid-flight (flush-on-snapshot covers the
	// merged scans the probes issue). Lock-free reads are on, so every
	// Find/GetBatch/Floor/Ceiling probe below races the writers through
	// the seqlock path and must still be exact on its own stripe.
	s, err := NewShardedFromSample(7, sample, WithSegmentCapacity(16), WithPageCapacity(64),
		WithBackgroundRebalancing(2), WithLockFreeReads())
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := s.Close(); err != nil {
			t.Error(err)
		}
	}()
	ref := &lockedRef{counts: make(map[int64]int)}

	var wg sync.WaitGroup
	for g := 0; g < tortureG; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := workload.NewRNG(uint64(1000 + g))
			local := &refModel{} // this goroutine's stripe, exact
			for op := 0; op < tortureOpsPerG; op++ {
				k := tortureStripeKey(g, rng.Uint64())
				if rng.Uint64n(100) < 30 { // 30% delete
					got, err := s.Delete(k)
					if err != nil {
						t.Error(err)
						return
					}
					if want := local.delete(k); got != want {
						t.Errorf("g%d: Delete(%d) = %v, want %v", g, k, got, want)
						return
					}
					if got {
						ref.delete(k)
					}
				} else { // 70% put
					if err := s.Insert(k, diffVal(k)); err != nil {
						t.Error(err)
						return
					}
					local.insert(k)
					ref.insert(k)
				}

				if op%tortureCheckEvery != tortureCheckEvery-1 {
					continue
				}
				tortureProbe(t, g, s, local, rng)
				if t.Failed() {
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	// Quiescent exact check: the whole query surface against the
	// mutex-wrapped reference, via the single-threaded differential
	// harness, plus structural validation of every shard.
	m := &refModel{keys: ref.sortedKeys()}
	probes := []int64{minInt64, maxInt64, -1, 0, tortureKeySpace / 2, tortureKeySpace}
	rng := workload.NewRNG(77)
	for i := 0; i < 32; i++ {
		probes = append(probes, int64(rng.Uint64n(tortureKeySpace+200))-100)
	}
	checkQueries(t, s, m, probes)
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.Size() == 0 {
		t.Fatal("torture run left the map empty; the workload mix is broken")
	}
	// The probes above issued thousands of point reads against live
	// writers: the seqlock path must have served some of them, and
	// every fallback must be explained by the retry counter.
	st := s.Stats()
	if st.LockFreeReads == 0 {
		t.Error("no point read ever took the lock-free path")
	}
	if st.ReadFallbacks > 0 && st.ReadRetries == 0 {
		t.Errorf("%d fallbacks with zero retries: the retry loop is not engaging", st.ReadFallbacks)
	}
	t.Logf("lock-free reads: %d served, %d retries, %d fallbacks, %d epoch advances",
		st.LockFreeReads, st.ReadRetries, st.ReadFallbacks, st.EpochAdvances)
}

// tortureProbe runs the mid-flight checks: exact against the caller's
// stripe, invariant-based against the concurrently mutated whole.
func tortureProbe(t *testing.T, g int, s *Sharded, local *refModel, rng *workload.RNG) {
	// Exact point lookups on the own stripe.
	for i := 0; i < 4; i++ {
		k := tortureStripeKey(g, rng.Uint64())
		wantIdx := lbSlice(local.keys, k)
		want := wantIdx < len(local.keys) && local.keys[wantIdx] == k
		v, found := s.Find(k)
		if found != want {
			t.Errorf("g%d: Find(%d) found=%v, want %v", g, k, found, want)
			return
		}
		if found && v != diffVal(k) {
			t.Errorf("g%d: Find(%d) = %d, want %d", g, k, v, diffVal(k))
			return
		}
	}

	// Batched point lookups on the own stripe: GetBatch (per-shard
	// grouping, pooled scratch, engine batch path under each shard
	// lock) must agree with the exact own-stripe expectation while
	// every other stripe mutates concurrently.
	batch := make([]int64, 32)
	for i := range batch {
		batch[i] = tortureStripeKey(g, rng.Uint64())
	}
	res := s.GetBatch(batch, nil)
	for i, k := range batch {
		wantIdx := lbSlice(local.keys, k)
		want := wantIdx < len(local.keys) && local.keys[wantIdx] == k
		if res[i].OK != want || (want && res[i].Val != diffVal(k)) {
			t.Errorf("g%d: GetBatch[%d] key %d = (%d,%v), want found=%v",
				g, i, k, res[i].Val, res[i].OK, want)
			return
		}
	}

	// Floor/Ceiling bounds: the global answer can only be tighter than
	// the own-stripe answer, never on the wrong side of the probe.
	x := tortureStripeKey(g, rng.Uint64())
	if i := ubSlice(local.keys, x) - 1; i >= 0 {
		fk, _, ok := s.Floor(x)
		if !ok || fk > x || fk < local.keys[i] {
			t.Errorf("g%d: Floor(%d) = (%d,%v), want in [%d,%d]", g, x, fk, ok, local.keys[i], x)
			return
		}
	}
	if i := lbSlice(local.keys, x); i < len(local.keys) {
		ck, _, ok := s.Ceiling(x)
		if !ok || ck < x || ck > local.keys[i] {
			t.Errorf("g%d: Ceiling(%d) = (%d,%v), want in [%d,%d]", g, x, ck, ok, local.keys[i], x)
			return
		}
	}

	// Merged range scan: globally sorted, and the own-stripe
	// subsequence exactly matches the local model.
	lo := int64(rng.Uint64n(tortureKeySpace))
	hi := lo + int64(rng.Uint64n(tortureKeySpace/4))
	wantStripe := local.slice(lo, hi)
	si := 0
	prev := int64(minInt64)
	for k, v := range s.Range(lo, hi) {
		if k < lo || k > hi {
			t.Errorf("g%d: Range(%d,%d) yielded out-of-range key %d", g, lo, hi, k)
			return
		}
		if k < prev {
			t.Errorf("g%d: Range(%d,%d) out of order: %d after %d", g, lo, hi, k, prev)
			return
		}
		prev = k
		if int(k)%tortureG == g {
			if si >= len(wantStripe) || k != wantStripe[si] || v != diffVal(k) {
				t.Errorf("g%d: Range(%d,%d) own-stripe element %d = (%d,%d) diverges from the local model (%d expected)",
					g, lo, hi, si, k, v, len(wantStripe))
				return
			}
			si++
		}
	}
	if si != len(wantStripe) {
		t.Errorf("g%d: Range(%d,%d) yielded %d own-stripe elements, want %d", g, lo, hi, si, len(wantStripe))
		return
	}

	// Rank and CountRange lower bounds: at least the own stripe's
	// contribution, and Rank is monotone.
	r1, r2 := s.Rank(lo), s.Rank(hi+1)
	if r1 > r2 {
		t.Errorf("g%d: Rank not monotone: Rank(%d)=%d > Rank(%d)=%d", g, lo, r1, hi+1, r2)
		return
	}
	if ownBelow := lbSlice(local.keys, lo); r1 < ownBelow {
		t.Errorf("g%d: Rank(%d) = %d < own-stripe lower bound %d", g, lo, r1, ownBelow)
		return
	}
	if got := s.CountRange(lo, hi); got < len(wantStripe) {
		t.Errorf("g%d: CountRange(%d,%d) = %d < own-stripe count %d", g, lo, hi, got, len(wantStripe))
		return
	}
}

// TestShardedConcurrentBatches hammers ApplyBatch from every goroutine
// (mixed puts and deletes on the own stripe) while readers traverse the
// merged surface, then checks the final state exactly.
func TestShardedConcurrentBatches(t *testing.T) {
	sample := make([]int64, 128)
	for i := range sample {
		sample[i] = int64(i) * tortureKeySpace / int64(len(sample))
	}
	s, err := NewShardedFromSample(8, sample, WithSegmentCapacity(16), WithPageCapacity(64),
		WithBackgroundRebalancing(2), WithLockFreeReads())
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := s.Close(); err != nil {
			t.Error(err)
		}
	}()
	ref := &lockedRef{counts: make(map[int64]int)}

	const (
		batchG      = 4
		readerG     = 2
		batches     = 30
		opsPerBatch = 512 // 4 * 30 * 512 = ~61k batched ops
	)
	var writers, readers sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < readerG; g++ {
		readers.Add(1)
		go func(g int) {
			defer readers.Done()
			rng := workload.NewRNG(uint64(8000 + g))
			probes := make([]int64, 48)
			var res []Lookup
			for {
				select {
				case <-stop:
					return
				default:
				}
				prev := int64(minInt64)
				n := 0
				for k := range s.All() {
					if k < prev {
						t.Errorf("reader %d: All out of order: %d after %d", g, k, prev)
						return
					}
					prev = k
					n++
				}
				if cnt := s.CountRange(minInt64, maxInt64); cnt < 0 {
					t.Errorf("reader %d: negative CountRange %d", g, cnt)
					return
				}
				// Batched lookups race the batch writers: any hit must
				// carry the key's one true value (writers only ever
				// store diffVal(k)).
				for i := range probes {
					probes[i] = int64(rng.Uint64n(tortureKeySpace + 100))
				}
				res = s.GetBatch(probes, res)
				for i, k := range probes {
					if res[i].OK && res[i].Val != diffVal(k) {
						t.Errorf("reader %d: GetBatch key %d = %d, want %d", g, k, res[i].Val, diffVal(k))
						return
					}
				}
			}
		}(g)
	}
	for g := 0; g < batchG; g++ {
		writers.Add(1)
		go func(g int) {
			defer writers.Done()
			rng := workload.NewRNG(uint64(7000 + g))
			local := &refModel{}
			for b := 0; b < batches; b++ {
				// Even batches are pure ingest bursts whose per-shard
				// runs ride the bulk path; odd batches churn.
				delPct := uint64(30)
				if b%2 == 0 {
					delPct = 0
				}
				ops := make([]BatchOp, opsPerBatch)
				for i := range ops {
					k := tortureStripeKey(g, rng.Uint64())
					if rng.Uint64n(100) < delPct {
						ops[i] = BatchOp{Kind: OpDelete, Key: k}
					} else {
						ops[i] = BatchOp{Kind: OpPut, Key: k, Val: diffVal(k)}
					}
				}
				wantDeleted := 0
				for _, op := range ops {
					if op.Kind == OpDelete {
						if local.delete(op.Key) {
							wantDeleted++
							ref.delete(op.Key)
						}
					} else {
						local.insert(op.Key)
						ref.insert(op.Key)
					}
				}
				got, err := s.ApplyBatch(ops)
				if err != nil {
					t.Error(err)
					return
				}
				if got != wantDeleted {
					t.Errorf("g%d batch %d: ApplyBatch deleted %d, want %d", g, b, got, wantDeleted)
					return
				}
			}
		}(g)
	}
	writers.Wait()
	close(stop)
	readers.Wait()

	m := &refModel{keys: ref.sortedKeys()}
	probes := []int64{minInt64, maxInt64, 0, tortureKeySpace}
	rng := workload.NewRNG(5)
	for i := 0; i < 24; i++ {
		probes = append(probes, int64(rng.Uint64n(tortureKeySpace)))
	}
	checkQueries(t, s, m, probes)
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.BulkLoads == 0 {
		t.Fatal("concurrent batches never took the bulk path")
	}
	if st.LockFreeReads == 0 {
		t.Error("the reader goroutines never completed a lock-free GetBatch group")
	}
}
