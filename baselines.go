package rma

import (
	"iter"

	"rma/internal/abtree"
	"rma/internal/art"
	"rma/internal/dense"
	"rma/internal/staticindex"
)

// OrderedMap is the full ordered-dictionary surface shared by the RMA
// and the comparison structures of the paper's evaluation: point
// lookups, min/max, floor/ceiling navigation, rank/select order
// statistics, the four lazy iterator forms, callback scans and range
// aggregation. Applications, examples and the benchmark harness drive
// every backend through this interface.
//
// Complexity varies by backend: the RMA and the static structures
// answer Rank/Select/CountRange in O(log n) (the RMA via incrementally
// maintained per-segment cardinality prefix sums), while the unaugmented
// tree baselines hop their leaf chains in O(n/B).
type OrderedMap interface {
	Find(key int64) (int64, bool)
	// GetBatch resolves a batch of point lookups, writing into out
	// (grown to len(keys), reused when capacity suffices); out[i]
	// answers keys[i]. The RMA backends amortize index descents across
	// the sorted probe set; tree baselines answer probe by probe.
	GetBatch(keys []int64, out []Lookup) []Lookup
	Min() (int64, bool)
	Max() (int64, bool)

	// Navigation.
	Floor(x int64) (key, val int64, ok bool)
	Ceiling(x int64) (key, val int64, ok bool)

	// Order statistics.
	Rank(x int64) int
	Select(i int) (key, val int64, ok bool)
	CountRange(lo, hi int64) int

	// Lazy iteration (Go range-over-func).
	All() iter.Seq2[int64, int64]
	Ascend(lo int64) iter.Seq2[int64, int64]
	Descend(hi int64) iter.Seq2[int64, int64]
	Range(lo, hi int64) iter.Seq2[int64, int64]

	// Callback scans and aggregation.
	ScanRange(lo, hi int64, yield func(key, val int64) bool)
	Sum(lo, hi int64) (count int, sum int64)
	SumAll() (count int, sum int64)

	Size() int
	FootprintBytes() int64
}

// UpdatableMap is an OrderedMap that also supports point updates.
type UpdatableMap interface {
	OrderedMap
	InsertKV(key, val int64) error
	DeleteKey(key int64) (bool, error)
}

// --- RMA adapter ------------------------------------------------------------

// InsertKV implements UpdatableMap.
func (r *Array) InsertKV(key, val int64) error { return r.Insert(key, val) }

// DeleteKey implements UpdatableMap.
func (r *Array) DeleteKey(key int64) (bool, error) { return r.Delete(key) }

// --- (a,b)-tree -------------------------------------------------------------

// ABTree is a tuned (a,b)-tree (B+-tree with cache-line-sized inner
// nodes): the paper's main competitor.
type ABTree struct{ t *abtree.Tree }

// NewABTree returns an empty (a,b)-tree with the given leaf capacity.
func NewABTree(leafCap int) *ABTree { return &ABTree{t: abtree.New(leafCap)} }

// Insert adds a key/value pair.
func (b *ABTree) Insert(key, val int64) { b.t.Insert(key, val) }

// Delete removes one occurrence of key.
func (b *ABTree) Delete(key int64) bool { return b.t.Delete(key) }

// Find returns a value stored under key.
func (b *ABTree) Find(key int64) (int64, bool) { return b.t.Find(key) }

// GetBatch resolves a batch of point lookups, probe by probe.
func (b *ABTree) GetBatch(keys []int64, out []Lookup) []Lookup {
	return findBatchLoop(b.t.Find, keys, out)
}

// Min returns the smallest stored key.
func (b *ABTree) Min() (int64, bool) { return b.t.Min() }

// Max returns the largest stored key.
func (b *ABTree) Max() (int64, bool) { return b.t.Max() }

// Floor returns the greatest element with key <= x.
func (b *ABTree) Floor(x int64) (key, val int64, ok bool) { return b.t.Floor(x) }

// Ceiling returns the smallest element with key >= x.
func (b *ABTree) Ceiling(x int64) (key, val int64, ok bool) { return b.t.Ceiling(x) }

// Rank returns the number of elements with key < x (O(n/B) chain hop).
func (b *ABTree) Rank(x int64) int { return b.t.Rank(x) }

// Select returns the i-th smallest element (0-based).
func (b *ABTree) Select(i int) (key, val int64, ok bool) { return b.t.Select(i) }

// CountRange returns the number of elements in [lo, hi].
func (b *ABTree) CountRange(lo, hi int64) int { return b.t.CountRange(lo, hi) }

// All returns a lazy ascending iterator over every element.
func (b *ABTree) All() iter.Seq2[int64, int64] { return b.t.IterAscend(minInt64, maxInt64) }

// Ascend returns a lazy ascending iterator over elements with key >= lo.
func (b *ABTree) Ascend(lo int64) iter.Seq2[int64, int64] { return b.t.IterAscend(lo, maxInt64) }

// Descend returns a lazy descending iterator over elements with key <= hi.
func (b *ABTree) Descend(hi int64) iter.Seq2[int64, int64] { return b.t.IterDescend(minInt64, hi) }

// Range returns a lazy ascending iterator over [lo, hi].
func (b *ABTree) Range(lo, hi int64) iter.Seq2[int64, int64] { return b.t.IterAscend(lo, hi) }

// ScanRange visits elements in [lo, hi] through the leaf chain.
func (b *ABTree) ScanRange(lo, hi int64, yield func(key, val int64) bool) {
	b.t.ScanRange(lo, hi, yield)
}

// Sum aggregates elements in [lo, hi].
func (b *ABTree) Sum(lo, hi int64) (count int, sum int64) { return b.t.Sum(lo, hi) }

// SumAll aggregates every element.
func (b *ABTree) SumAll() (count int, sum int64) { return b.t.SumAll() }

// BulkLoad rebuilds the tree from sorted slices.
func (b *ABTree) BulkLoad(keys, vals []int64) { b.t.BulkLoad(keys, vals) }

// Size returns the number of stored elements.
func (b *ABTree) Size() int { return b.t.Size() }

// FootprintBytes estimates the tree's memory.
func (b *ABTree) FootprintBytes() int64 { return b.t.FootprintBytes() }

// InsertKV implements UpdatableMap.
func (b *ABTree) InsertKV(key, val int64) error { b.t.Insert(key, val); return nil }

// DeleteKey implements UpdatableMap.
func (b *ABTree) DeleteKey(key int64) (bool, error) { return b.t.Delete(key), nil }

// --- ART-indexed tree ---------------------------------------------------------

// ARTTree is an (a,b)-tree whose leaves are indexed by an Adaptive Radix
// Tree: the strongest competitor in the paper's evaluation.
type ARTTree struct{ t *art.Tree }

// NewARTTree returns an empty ART-indexed tree with the given leaf
// capacity.
func NewARTTree(leafCap int) *ARTTree { return &ARTTree{t: art.New(leafCap)} }

// Insert adds a key/value pair.
func (b *ARTTree) Insert(key, val int64) { b.t.Insert(key, val) }

// Delete removes one occurrence of key.
func (b *ARTTree) Delete(key int64) bool { return b.t.Delete(key) }

// Find returns a value stored under key.
func (b *ARTTree) Find(key int64) (int64, bool) { return b.t.Find(key) }

// GetBatch resolves a batch of point lookups, probe by probe.
func (b *ARTTree) GetBatch(keys []int64, out []Lookup) []Lookup {
	return findBatchLoop(b.t.Find, keys, out)
}

// Min returns the smallest stored key.
func (b *ARTTree) Min() (int64, bool) { return b.t.Min() }

// Max returns the largest stored key.
func (b *ARTTree) Max() (int64, bool) { return b.t.Max() }

// Floor returns the greatest element with key <= x.
func (b *ARTTree) Floor(x int64) (key, val int64, ok bool) { return b.t.Floor(x) }

// Ceiling returns the smallest element with key >= x.
func (b *ARTTree) Ceiling(x int64) (key, val int64, ok bool) { return b.t.Ceiling(x) }

// Rank returns the number of elements with key < x (O(n/B) chain hop).
func (b *ARTTree) Rank(x int64) int { return b.t.Rank(x) }

// Select returns the i-th smallest element (0-based).
func (b *ARTTree) Select(i int) (key, val int64, ok bool) { return b.t.Select(i) }

// CountRange returns the number of elements in [lo, hi].
func (b *ARTTree) CountRange(lo, hi int64) int { return b.t.CountRange(lo, hi) }

// All returns a lazy ascending iterator over every element.
func (b *ARTTree) All() iter.Seq2[int64, int64] { return b.t.IterAscend(minInt64, maxInt64) }

// Ascend returns a lazy ascending iterator over elements with key >= lo.
func (b *ARTTree) Ascend(lo int64) iter.Seq2[int64, int64] { return b.t.IterAscend(lo, maxInt64) }

// Descend returns a lazy descending iterator over elements with key <= hi.
func (b *ARTTree) Descend(hi int64) iter.Seq2[int64, int64] { return b.t.IterDescend(minInt64, hi) }

// Range returns a lazy ascending iterator over [lo, hi].
func (b *ARTTree) Range(lo, hi int64) iter.Seq2[int64, int64] { return b.t.IterAscend(lo, hi) }

// ScanRange visits elements in [lo, hi] through the leaf chain.
func (b *ARTTree) ScanRange(lo, hi int64, yield func(key, val int64) bool) {
	b.t.ScanRange(lo, hi, yield)
}

// Sum aggregates elements in [lo, hi].
func (b *ARTTree) Sum(lo, hi int64) (count int, sum int64) { return b.t.Sum(lo, hi) }

// SumAll aggregates every element.
func (b *ARTTree) SumAll() (count int, sum int64) { return b.t.SumAll() }

// BulkLoad rebuilds the tree from sorted slices.
func (b *ARTTree) BulkLoad(keys, vals []int64) { b.t.BulkLoad(keys, vals) }

// Size returns the number of stored elements.
func (b *ARTTree) Size() int { return b.t.Size() }

// FootprintBytes estimates the tree's memory.
func (b *ARTTree) FootprintBytes() int64 { return b.t.FootprintBytes() }

// InsertKV implements UpdatableMap.
func (b *ARTTree) InsertKV(key, val int64) error { b.t.Insert(key, val); return nil }

// DeleteKey implements UpdatableMap.
func (b *ARTTree) DeleteKey(key int64) (bool, error) { return b.t.Delete(key), nil }

// --- static dense array -------------------------------------------------------

// Dense is an immutable sorted dense column: the scan-throughput upper
// bound of the evaluation.
type Dense struct{ a *dense.Array }

// NewDense builds a dense column from sorted parallel slices.
func NewDense(keys, vals []int64) *Dense { return &Dense{a: dense.FromSorted(keys, vals)} }

// Find returns a value stored under key.
func (d *Dense) Find(key int64) (int64, bool) { return d.a.Find(key) }

// GetBatch resolves a batch of point lookups, probe by probe.
func (d *Dense) GetBatch(keys []int64, out []Lookup) []Lookup {
	return findBatchLoop(d.a.Find, keys, out)
}

// Min returns the smallest key.
func (d *Dense) Min() (int64, bool) { return d.a.Min() }

// Max returns the largest key.
func (d *Dense) Max() (int64, bool) { return d.a.Max() }

// Floor returns the greatest element with key <= x.
func (d *Dense) Floor(x int64) (key, val int64, ok bool) { return d.a.Floor(x) }

// Ceiling returns the smallest element with key >= x.
func (d *Dense) Ceiling(x int64) (key, val int64, ok bool) { return d.a.Ceiling(x) }

// Rank returns the number of elements with key < x.
func (d *Dense) Rank(x int64) int { return d.a.Rank(x) }

// Select returns the i-th smallest element (0-based).
func (d *Dense) Select(i int) (key, val int64, ok bool) { return d.a.Select(i) }

// CountRange returns the number of elements in [lo, hi].
func (d *Dense) CountRange(lo, hi int64) int { return d.a.CountRange(lo, hi) }

// All returns a lazy ascending iterator over every element.
func (d *Dense) All() iter.Seq2[int64, int64] { return d.a.IterAscend(minInt64, maxInt64) }

// Ascend returns a lazy ascending iterator over elements with key >= lo.
func (d *Dense) Ascend(lo int64) iter.Seq2[int64, int64] { return d.a.IterAscend(lo, maxInt64) }

// Descend returns a lazy descending iterator over elements with key <= hi.
func (d *Dense) Descend(hi int64) iter.Seq2[int64, int64] { return d.a.IterDescend(minInt64, hi) }

// Range returns a lazy ascending iterator over [lo, hi].
func (d *Dense) Range(lo, hi int64) iter.Seq2[int64, int64] { return d.a.IterAscend(lo, hi) }

// ScanRange visits elements in [lo, hi].
func (d *Dense) ScanRange(lo, hi int64, yield func(key, val int64) bool) {
	d.a.ScanRange(lo, hi, yield)
}

// Sum aggregates elements in [lo, hi].
func (d *Dense) Sum(lo, hi int64) (count int, sum int64) { return d.a.Sum(lo, hi) }

// SumAll aggregates the whole column.
func (d *Dense) SumAll() (count int, sum int64) { return d.a.SumAll() }

// Size returns the number of elements.
func (d *Dense) Size() int { return d.a.Size() }

// FootprintBytes returns the column's memory (16 bytes per element).
func (d *Dense) FootprintBytes() int64 { return d.a.FootprintBytes() }

// --- static-index column ------------------------------------------------------

// StaticIndexed is a sorted dense column cut into fixed-size blocks
// routed by the RMA's pointer-free static index (Fig 5): the baseline
// isolating what the packed index contributes over whole-column binary
// search. Like Dense it is immutable.
type StaticIndexed struct{ c *staticindex.Column }

// NewStaticIndexed builds the baseline from sorted parallel slices with
// the given block size (the analogue of the RMA's segment capacity B;
// the paper's default is 128) and the paper's fanout-65 index.
func NewStaticIndexed(keys, vals []int64, block int) *StaticIndexed {
	return &StaticIndexed{c: staticindex.NewColumn(keys, vals, block, 65)}
}

// Find returns a value stored under key.
func (s *StaticIndexed) Find(key int64) (int64, bool) { return s.c.Find(key) }

// GetBatch resolves a batch of point lookups, probe by probe.
func (s *StaticIndexed) GetBatch(keys []int64, out []Lookup) []Lookup {
	return findBatchLoop(s.c.Find, keys, out)
}

// Min returns the smallest key.
func (s *StaticIndexed) Min() (int64, bool) { return s.c.Min() }

// Max returns the largest key.
func (s *StaticIndexed) Max() (int64, bool) { return s.c.Max() }

// Floor returns the greatest element with key <= x.
func (s *StaticIndexed) Floor(x int64) (key, val int64, ok bool) { return s.c.Floor(x) }

// Ceiling returns the smallest element with key >= x.
func (s *StaticIndexed) Ceiling(x int64) (key, val int64, ok bool) { return s.c.Ceiling(x) }

// Rank returns the number of elements with key < x.
func (s *StaticIndexed) Rank(x int64) int { return s.c.Rank(x) }

// Select returns the i-th smallest element (0-based).
func (s *StaticIndexed) Select(i int) (key, val int64, ok bool) { return s.c.Select(i) }

// CountRange returns the number of elements in [lo, hi].
func (s *StaticIndexed) CountRange(lo, hi int64) int { return s.c.CountRange(lo, hi) }

// All returns a lazy ascending iterator over every element.
func (s *StaticIndexed) All() iter.Seq2[int64, int64] { return s.c.IterAscend(minInt64, maxInt64) }

// Ascend returns a lazy ascending iterator over elements with key >= lo.
func (s *StaticIndexed) Ascend(lo int64) iter.Seq2[int64, int64] {
	return s.c.IterAscend(lo, maxInt64)
}

// Descend returns a lazy descending iterator over elements with key <= hi.
func (s *StaticIndexed) Descend(hi int64) iter.Seq2[int64, int64] {
	return s.c.IterDescend(minInt64, hi)
}

// Range returns a lazy ascending iterator over [lo, hi].
func (s *StaticIndexed) Range(lo, hi int64) iter.Seq2[int64, int64] { return s.c.IterAscend(lo, hi) }

// ScanRange visits elements in [lo, hi].
func (s *StaticIndexed) ScanRange(lo, hi int64, yield func(key, val int64) bool) {
	s.c.ScanRange(lo, hi, yield)
}

// Sum aggregates elements in [lo, hi].
func (s *StaticIndexed) Sum(lo, hi int64) (count int, sum int64) { return s.c.Sum(lo, hi) }

// SumAll aggregates the whole column.
func (s *StaticIndexed) SumAll() (count int, sum int64) { return s.c.SumAll() }

// Size returns the number of elements.
func (s *StaticIndexed) Size() int { return s.c.Size() }

// FootprintBytes returns the column's memory including the index.
func (s *StaticIndexed) FootprintBytes() int64 { return s.c.FootprintBytes() }

// findBatchLoop answers a probe batch with per-key Find: the baseline
// GetBatch shared by the tree and column backends (only the RMA engines
// amortize descents across the batch).
func findBatchLoop(find func(int64) (int64, bool), keys []int64, out []Lookup) []Lookup {
	if cap(out) < len(keys) {
		out = make([]Lookup, len(keys))
	}
	out = out[:len(keys)]
	for i, k := range keys {
		v, ok := find(k)
		out[i] = Lookup{Val: v, OK: ok}
	}
	return out
}

// Interface conformance.
var (
	_ UpdatableMap = (*Array)(nil)
	_ UpdatableMap = (*ABTree)(nil)
	_ UpdatableMap = (*ARTTree)(nil)
	_ OrderedMap   = (*Dense)(nil)
	_ OrderedMap   = (*StaticIndexed)(nil)
)
