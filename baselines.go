package rma

import (
	"rma/internal/abtree"
	"rma/internal/art"
	"rma/internal/dense"
)

// OrderedMap is the operation surface shared by the RMA and the
// comparison structures of the paper's evaluation, so applications (and
// the benchmark harness) can swap implementations.
type OrderedMap interface {
	Find(key int64) (int64, bool)
	ScanRange(lo, hi int64, yield func(key, val int64) bool)
	Sum(lo, hi int64) (count int, sum int64)
	SumAll() (count int, sum int64)
	Size() int
	FootprintBytes() int64
}

// UpdatableMap is an OrderedMap that also supports point updates.
type UpdatableMap interface {
	OrderedMap
	InsertKV(key, val int64) error
	DeleteKey(key int64) (bool, error)
}

// --- RMA adapter ------------------------------------------------------------

// InsertKV implements UpdatableMap.
func (r *Array) InsertKV(key, val int64) error { return r.Insert(key, val) }

// DeleteKey implements UpdatableMap.
func (r *Array) DeleteKey(key int64) (bool, error) { return r.Delete(key) }

// --- (a,b)-tree -------------------------------------------------------------

// ABTree is a tuned (a,b)-tree (B+-tree with cache-line-sized inner
// nodes): the paper's main competitor.
type ABTree struct{ t *abtree.Tree }

// NewABTree returns an empty (a,b)-tree with the given leaf capacity.
func NewABTree(leafCap int) *ABTree { return &ABTree{t: abtree.New(leafCap)} }

// Insert adds a key/value pair.
func (b *ABTree) Insert(key, val int64) { b.t.Insert(key, val) }

// Delete removes one occurrence of key.
func (b *ABTree) Delete(key int64) bool { return b.t.Delete(key) }

// Find returns a value stored under key.
func (b *ABTree) Find(key int64) (int64, bool) { return b.t.Find(key) }

// ScanRange visits elements in [lo, hi] through the leaf chain.
func (b *ABTree) ScanRange(lo, hi int64, yield func(key, val int64) bool) {
	b.t.ScanRange(lo, hi, yield)
}

// Sum aggregates elements in [lo, hi].
func (b *ABTree) Sum(lo, hi int64) (count int, sum int64) { return b.t.Sum(lo, hi) }

// SumAll aggregates every element.
func (b *ABTree) SumAll() (count int, sum int64) { return b.t.SumAll() }

// BulkLoad rebuilds the tree from sorted slices.
func (b *ABTree) BulkLoad(keys, vals []int64) { b.t.BulkLoad(keys, vals) }

// Size returns the number of stored elements.
func (b *ABTree) Size() int { return b.t.Size() }

// FootprintBytes estimates the tree's memory.
func (b *ABTree) FootprintBytes() int64 { return b.t.FootprintBytes() }

// InsertKV implements UpdatableMap.
func (b *ABTree) InsertKV(key, val int64) error { b.t.Insert(key, val); return nil }

// DeleteKey implements UpdatableMap.
func (b *ABTree) DeleteKey(key int64) (bool, error) { return b.t.Delete(key), nil }

// --- ART-indexed tree ---------------------------------------------------------

// ARTTree is an (a,b)-tree whose leaves are indexed by an Adaptive Radix
// Tree: the strongest competitor in the paper's evaluation.
type ARTTree struct{ t *art.Tree }

// NewARTTree returns an empty ART-indexed tree with the given leaf
// capacity.
func NewARTTree(leafCap int) *ARTTree { return &ARTTree{t: art.New(leafCap)} }

// Insert adds a key/value pair.
func (b *ARTTree) Insert(key, val int64) { b.t.Insert(key, val) }

// Delete removes one occurrence of key.
func (b *ARTTree) Delete(key int64) bool { return b.t.Delete(key) }

// Find returns a value stored under key.
func (b *ARTTree) Find(key int64) (int64, bool) { return b.t.Find(key) }

// ScanRange visits elements in [lo, hi] through the leaf chain.
func (b *ARTTree) ScanRange(lo, hi int64, yield func(key, val int64) bool) {
	b.t.ScanRange(lo, hi, yield)
}

// Sum aggregates elements in [lo, hi].
func (b *ARTTree) Sum(lo, hi int64) (count int, sum int64) { return b.t.Sum(lo, hi) }

// SumAll aggregates every element.
func (b *ARTTree) SumAll() (count int, sum int64) { return b.t.SumAll() }

// BulkLoad rebuilds the tree from sorted slices.
func (b *ARTTree) BulkLoad(keys, vals []int64) { b.t.BulkLoad(keys, vals) }

// Size returns the number of stored elements.
func (b *ARTTree) Size() int { return b.t.Size() }

// FootprintBytes estimates the tree's memory.
func (b *ARTTree) FootprintBytes() int64 { return b.t.FootprintBytes() }

// InsertKV implements UpdatableMap.
func (b *ARTTree) InsertKV(key, val int64) error { b.t.Insert(key, val); return nil }

// DeleteKey implements UpdatableMap.
func (b *ARTTree) DeleteKey(key int64) (bool, error) { return b.t.Delete(key), nil }

// --- static dense array -------------------------------------------------------

// Dense is an immutable sorted dense column: the scan-throughput upper
// bound of the evaluation.
type Dense struct{ a *dense.Array }

// NewDense builds a dense column from sorted parallel slices.
func NewDense(keys, vals []int64) *Dense { return &Dense{a: dense.FromSorted(keys, vals)} }

// Find returns a value stored under key.
func (d *Dense) Find(key int64) (int64, bool) { return d.a.Find(key) }

// ScanRange visits elements in [lo, hi].
func (d *Dense) ScanRange(lo, hi int64, yield func(key, val int64) bool) {
	d.a.ScanRange(lo, hi, yield)
}

// Sum aggregates elements in [lo, hi].
func (d *Dense) Sum(lo, hi int64) (count int, sum int64) { return d.a.Sum(lo, hi) }

// SumAll aggregates the whole column.
func (d *Dense) SumAll() (count int, sum int64) { return d.a.SumAll() }

// Size returns the number of elements.
func (d *Dense) Size() int { return d.a.Size() }

// FootprintBytes returns the column's memory (16 bytes per element).
func (d *Dense) FootprintBytes() int64 { return d.a.FootprintBytes() }

// Interface conformance.
var (
	_ UpdatableMap = (*Array)(nil)
	_ UpdatableMap = (*ABTree)(nil)
	_ UpdatableMap = (*ARTTree)(nil)
	_ OrderedMap   = (*Dense)(nil)
)
