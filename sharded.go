package rma

import (
	"fmt"
	"iter"
	"runtime"

	"rma/internal/rebal"
	"rma/internal/shard"
)

// Sharded is the concurrent serving layer: an ordered map that
// partitions the key space across K independent Rewired Memory Arrays,
// each guarded by its own lock. Shard boundaries are fixed at
// construction, so routing is a lock-free binary search and keys never
// migrate between shards; every engine-level operation — rebalances,
// rewiring, resizes — stays confined to one shard's page space.
//
// All methods are safe for concurrent use. Single-shard point
// operations (Insert, Delete, Find, Contains) are linearizable; every
// operation that may visit several shards — iterators, Min/Max,
// Floor/Ceiling, Rank, Select, CountRange, Sum, Size, ApplyBatch — is
// atomic per shard but not across shards — see CONCURRENCY.md for the
// exact contract. Iterator and scan callbacks run holding the current
// shard's lock and must not call back into the same Sharded map.
//
// With WithBackgroundRebalancing, a maintenance pool
// (internal/rebal) executes deferred window rebalances and resizes off
// the write path; call Close to drain it when done. Without the option,
// Close is a no-op and the map needs no lifecycle management.
type Sharded struct {
	m *shard.Map
	// pool is the background maintenance pool; nil when background
	// rebalancing is off.
	pool *rebal.Pool
}

// BatchOp is one operation of an ApplyBatch batch.
type BatchOp = shard.Op

// Batch operation kinds.
const (
	// OpPut inserts Key/Val (multiset semantics, like Insert).
	OpPut = shard.OpPut
	// OpDelete removes one occurrence of Key (Val is ignored).
	OpDelete = shard.OpDelete
)

// NewSharded builds a Sharded map with the given number of shards,
// splitting the full int64 key domain evenly. Every shard is a fresh
// RMA built from the same options New accepts. Use NewShardedFromSample
// when the key distribution is known — uniform boundaries concentrate a
// skewed workload onto few shards.
func NewSharded(shards int, opts ...Option) (*Sharded, error) {
	if shards < 1 {
		return nil, fmt.Errorf("rma: NewSharded needs at least 1 shard, got %d", shards)
	}
	return newSharded(shard.UniformSeps(shards), opts)
}

// NewShardedFromSample builds a Sharded map whose shard boundaries sit
// at the quantiles of sample, so each shard receives roughly the same
// share of a workload distributed like the sample.
func NewShardedFromSample(shards int, sample []int64, opts ...Option) (*Sharded, error) {
	if shards < 1 {
		return nil, fmt.Errorf("rma: NewShardedFromSample needs at least 1 shard, got %d", shards)
	}
	return newSharded(shard.QuantileSeps(shards, sample), opts)
}

func newSharded(seps []int64, opts []Option) (*Sharded, error) {
	o := defaultOptions()
	for _, fn := range opts {
		fn(&o)
	}
	m, err := shard.New(o.cfg, seps)
	if err != nil {
		return nil, err
	}
	if o.durDir != "" {
		if err := m.EnableDurability(o.durDir); err != nil {
			return nil, err
		}
	}
	if o.wal != nil {
		if o.durDir == "" {
			return nil, fmt.Errorf("rma: WithWAL requires WithDurability")
		}
		wo, err := o.wal.walOptions()
		if err != nil {
			return nil, err
		}
		if err := m.EnableWAL(walDirFor(o.durDir), wo, o.wal.policy()); err != nil {
			return nil, err
		}
	}
	return finishSharded(m, o), nil
}

// finishSharded wraps a constructed (or recovered) shard.Map in the
// facade, wiring the maintenance pool when requested. Durability must
// already be attached — the pool's workers fold shard checkpoints into
// their sweeps, so the map must be fully durable before Start.
func finishSharded(m *shard.Map, o options) *Sharded {
	s := &Sharded{m: m}
	if o.lockFree {
		// Before the pool starts and before the map is shared: the epoch
		// gates route page retirement from the first rebalance on.
		m.EnableLockFreeReads()
	}
	if o.rebalWorkers != 0 {
		workers := o.rebalWorkers
		if workers < 0 {
			workers = runtime.GOMAXPROCS(0)
		}
		s.pool = rebal.NewPool(m, workers)
		if o.wal != nil && o.wal.SchedulerPeriod > 0 {
			s.pool.SetSchedulerPeriod(o.wal.SchedulerPeriod)
		}
		// Order matters: deferred mode (and the notify hook) must be in
		// place before the map is shared, and the pool must be running
		// before the first write can defer work.
		m.EnableDeferredRebalancing(s.pool.Notify)
		s.pool.Start()
	}
	return s
}

// Close stops the background rebalancer, draining every deferred window
// first, returns the shards to synchronous rebalancing, and releases
// the durability files (WithDurability). It does not checkpoint: state
// since the last Checkpoint call is not persisted. The map stays usable
// from memory afterwards but can no longer checkpoint. Idempotent and a
// no-op when neither feature was enabled. Do not call it concurrently
// with writers that must observe the asynchronous contract; writes that
// race a Close are still applied correctly, merely rebalanced
// synchronously.
func (s *Sharded) Close() error {
	var err error
	if s.pool != nil {
		err = s.pool.Close()
		if derr := s.m.DisableDeferredRebalancing(); err == nil {
			err = derr
		}
	}
	if werr := s.m.CloseWAL(); err == nil {
		err = werr
	}
	if cerr := s.m.CloseDurability(); err == nil {
		err = cerr
	}
	return err
}

// Flush synchronously drains all deferred rebalance work, so subsequent
// reads pay no flush-on-snapshot catch-up. A no-op when background
// rebalancing is off or the backlog is empty.
func (s *Sharded) Flush() error { return s.m.FlushAll() }

// PendingWindows returns the number of deferred rebalance windows
// currently queued across shards (0 without background rebalancing) —
// a load diagnostic for the maintenance pool.
func (s *Sharded) PendingWindows() int { return s.m.PendingWindows() }

// NumShards returns the number of shards K.
func (s *Sharded) NumShards() int { return s.m.NumShards() }

// Boundaries returns a copy of the K-1 shard separator keys.
func (s *Sharded) Boundaries() []int64 { return s.m.Boundaries() }

// ShardSizes returns the per-shard element counts (load diagnostics).
func (s *Sharded) ShardSizes() []int { return s.m.ShardSizes() }

// Insert adds a key/value pair to the owning shard.
func (s *Sharded) Insert(key, val int64) error { return s.m.Insert(key, val) }

// Delete removes one occurrence of key, reporting whether it existed.
func (s *Sharded) Delete(key int64) (bool, error) { return s.m.Delete(key) }

// ApplyBatch applies a batch of puts and deletes, grouping operations
// per shard so each shard is locked once and long insertion runs ride
// the bulk-load path. It returns how many deletions found their key.
// Operations on the same key keep their relative order; the batch is
// atomic per shard, not across shards.
func (s *Sharded) ApplyBatch(ops []BatchOp) (deleted int, err error) {
	return s.m.ApplyBatch(ops)
}

// Find returns a value stored under key.
func (s *Sharded) Find(key int64) (int64, bool) { return s.m.Find(key) }

// GetBatch resolves a batch of point lookups: out is grown to
// len(keys) (reused when its capacity suffices) and out[i] answers
// keys[i]. Probes are grouped per shard in one counting-sort pass, so
// each shard is locked exactly once and its group rides the engine's
// descent-amortizing batch path. Like every multi-shard operation the
// batch is consistent per shard, not across shards.
func (s *Sharded) GetBatch(keys []int64, out []Lookup) []Lookup { return s.m.GetBatch(keys, out) }

// Contains reports whether key is stored.
func (s *Sharded) Contains(key int64) bool { return s.m.Contains(key) }

// Min returns the smallest stored key.
func (s *Sharded) Min() (int64, bool) { return s.m.Min() }

// Max returns the largest stored key.
func (s *Sharded) Max() (int64, bool) { return s.m.Max() }

// Floor returns the greatest stored element with key <= x.
func (s *Sharded) Floor(x int64) (key, val int64, ok bool) { return s.m.Floor(x) }

// Ceiling returns the smallest stored element with key >= x.
func (s *Sharded) Ceiling(x int64) (key, val int64, ok bool) { return s.m.Ceiling(x) }

// Rank returns the number of stored elements with key < x.
func (s *Sharded) Rank(x int64) int { return s.m.Rank(x) }

// Select returns the i-th smallest element (0-based).
func (s *Sharded) Select(i int) (key, val int64, ok bool) { return s.m.Select(i) }

// CountRange returns the number of elements with lo <= key <= hi.
func (s *Sharded) CountRange(lo, hi int64) int { return s.m.CountRange(lo, hi) }

// All returns a lazy ascending iterator over every element, merged
// across shards (shards own disjoint key ranges, so the merge is a
// concatenation — no heap, one shard lock at a time).
func (s *Sharded) All() iter.Seq2[int64, int64] { return s.m.IterAscend(minInt64, maxInt64) }

// Ascend returns a lazy ascending iterator over elements with key >= lo.
func (s *Sharded) Ascend(lo int64) iter.Seq2[int64, int64] { return s.m.IterAscend(lo, maxInt64) }

// Descend returns a lazy descending iterator over elements with
// key <= hi.
func (s *Sharded) Descend(hi int64) iter.Seq2[int64, int64] { return s.m.IterDescend(minInt64, hi) }

// Range returns a lazy ascending iterator over lo <= key <= hi.
func (s *Sharded) Range(lo, hi int64) iter.Seq2[int64, int64] { return s.m.IterAscend(lo, hi) }

// ScanRange visits every element with lo <= key <= hi in key order.
func (s *Sharded) ScanRange(lo, hi int64, yield func(key, val int64) bool) {
	s.m.ScanRange(lo, hi, yield)
}

// Scan visits every element in key order.
func (s *Sharded) Scan(yield func(key, val int64) bool) { s.m.Scan(yield) }

// SnapshotScan visits every element with lo <= key <= hi in key order
// and reports whether the whole traversal observed one consistent cut —
// an instant at which every visited shard simultaneously held exactly
// the state the callback saw. Requires WithLockFreeReads for the
// verdict to be meaningful (without it, writers cannot be detected
// between shard visits and the scan reports true with the ordinary
// per-shard-atomic guarantee). On a broken cut the scan completes with
// per-shard semantics and returns false — callers needing a true
// snapshot retry.
func (s *Sharded) SnapshotScan(lo, hi int64, yield func(key, val int64) bool) bool {
	return s.m.SnapshotScanRange(lo, hi, yield)
}

// Sum aggregates elements with lo <= key <= hi, returning their count
// and the sum of their values.
func (s *Sharded) Sum(lo, hi int64) (count int, sum int64) { return s.m.Sum(lo, hi) }

// SumAll aggregates every element.
func (s *Sharded) SumAll() (count int, sum int64) { return s.m.SumAll() }

// Size returns the total number of stored elements.
func (s *Sharded) Size() int { return s.m.Size() }

// FootprintBytes returns the physical memory held by all shards.
func (s *Sharded) FootprintBytes() int64 { return s.m.FootprintBytes() }

// Stats returns the operation counters summed across shards.
func (s *Sharded) Stats() Stats {
	st := s.m.Stats()
	return Stats{
		Inserts: st.Inserts, Deletes: st.Deletes, Lookups: st.Lookups,
		Rebalances: st.Rebalances, AdaptiveRebalances: st.AdaptiveRebalances,
		RebalancedElements: st.RebalancedElements, ElementCopies: st.ElementCopies,
		PageSwaps: st.PageSwaps,
		Resizes:   st.Resizes, Grows: st.Grows, Shrinks: st.Shrinks,
		BulkLoads:       st.BulkLoads,
		DeferredWindows: st.DeferredWindows, MaintenanceRuns: st.MaintenanceRuns,
		AllocFailures: st.AllocFailures,
		Checkpoints:   st.Checkpoints, CheckpointFailures: st.CheckpointFailures,
		CheckpointPages: st.CheckpointPages,
		LockFreeReads:   st.LockFreeReads, ReadRetries: st.ReadRetries,
		ReadFallbacks: st.ReadFallbacks, EpochAdvances: st.EpochAdvances,
		SnapshotBreaks: st.SnapshotBreaks,
		WALRecords:     st.WALRecords, WALWaves: st.WALWaves, WALSyncs: st.WALSyncs,
		WALRotations: st.WALRotations, WALTruncations: st.WALTruncations,
		WALAppendFailures: st.WALAppendFailures, WALSyncFailures: st.WALSyncFailures,
		WALRotateFailures: st.WALRotateFailures, WALTruncateFailures: st.WALTruncateFailures,
		AutoCheckpoints: st.AutoCheckpoints,
	}
}

// ServeStats is the serving-layer snapshot: the operation counters
// plus the load diagnostics a front end or soak harness reports in one
// call — cardinality, shard fan-out, deferred-maintenance backlog and
// physical footprint. rmaserve's STATS command and the rmabench serve
// harness both emit it.
type ServeStats struct {
	Stats
	// Size is the stored element count (per-shard consistent, like
	// every multi-shard read).
	Size int
	// Shards is the shard fan-out K.
	Shards int
	// PendingWindows is the deferred rebalance backlog across shards (0
	// without WithBackgroundRebalancing).
	PendingWindows int
	// FootprintBytes is the physical memory held by all shards.
	FootprintBytes int64
	// CheckpointRounds and CheckpointLSN identify the last published
	// recovery point: rounds published since this process started and
	// the WAL LSN the latest covers (both 0 without WithDurability /
	// WithWAL) — the LASTSAVE surface.
	CheckpointRounds uint64
	CheckpointLSN    uint64
}

// ServeStats returns the serving snapshot. It takes each shard's lock
// once per aggregated surface; under heavy traffic call it at reporting
// cadence, not per request.
func (s *Sharded) ServeStats() ServeStats {
	rounds, lsn := s.m.LastCheckpoint()
	return ServeStats{
		Stats:            s.Stats(),
		Size:             s.Size(),
		Shards:           s.NumShards(),
		PendingWindows:   s.PendingWindows(),
		FootprintBytes:   s.FootprintBytes(),
		CheckpointRounds: rounds,
		CheckpointLSN:    lsn,
	}
}

// Validate checks every shard's structural invariants and shard-range
// ownership; O(n), for tests and debugging.
func (s *Sharded) Validate() error { return s.m.Validate() }

// InsertKV implements UpdatableMap.
func (s *Sharded) InsertKV(key, val int64) error { return s.Insert(key, val) }

// DeleteKey implements UpdatableMap.
func (s *Sharded) DeleteKey(key int64) (bool, error) { return s.Delete(key) }

var _ UpdatableMap = (*Sharded)(nil)
