package rma

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"
)

// Kill -9 recovery torture: a child process (this test binary re-execed
// with RMA_TORTURE_DIR set) runs a deterministic op stream against a
// durable sharded map, checkpointing every few hundred ops and fsyncing
// an acknowledgment record after each successful Checkpoint. The parent
// SIGKILLs it at a random moment — mid-ops, mid-checkpoint, mid-publish
// — then recovers the map and differentially verifies it:
//
//   - zero lost acknowledged checkpoints: the recovered op counter is
//     >= the last acknowledged one (an acked checkpoint can never roll
//     back);
//   - zero divergence: the recovered content equals, key for key and
//     value for value, an in-memory reference built by replaying the op
//     stream up to exactly the recovered counter.
//
// The op stream is a pure function of the op index (splitmix64), and
// whether op i inserts or deletes depends only on the reference state
// at i — so parent, child, and every post-crash child rebuild identical
// histories with no shared state but the checkpoint itself. The counter
// rides inside the map under a reserved key written immediately before
// each Checkpoint, making "which prefix does this checkpoint hold"
// recoverable from the checkpoint alone.
//
// Cycles: 50 by default (8 with -short), scaled by RMA_TORTURE_SCALE —
// the knob CI's nightly job turns up.

const (
	tortureKeyDomain = 1 << 17
	tortureCkptEvery = 512
	tortureMaxOps    = 1 << 20
	tortureShards    = 4
	// tortureCounterKey is reserved for the op counter: the op stream's
	// key domain is non-negative, so it never collides.
	tortureCounterKey = math.MinInt64
)

func tortureEngineOpts() []Option {
	return []Option{
		WithSegmentCapacity(8),
		WithPageCapacity(64),
		WithBackgroundRebalancing(2),
	}
}

func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// tortureOp derives op i: its key, its value if inserting. Whether it
// inserts or deletes is decided against the live reference set.
func tortureOp(i int) (key, val int64) {
	h := splitmix64(uint64(i) + 1)
	return int64(h % tortureKeyDomain), int64(h >> 40)
}

// replayTortureRef replays ops [lo, hi) into ref — the pure in-memory
// model of the map's content after hi ops.
func replayTortureRef(ref map[int64]int64, lo, hi int) {
	for i := lo; i < hi; i++ {
		k, v := tortureOp(i)
		if _, live := ref[k]; live {
			delete(ref, k)
		} else {
			ref[k] = v
		}
	}
}

func tortureDie(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "torture child: "+format+"\n", args...)
	os.Exit(2)
}

// TestDurabilityTortureChild is the child body — a no-op unless
// re-execed by the parent with RMA_TORTURE_DIR set. It runs until
// killed (or an op cap, whichever first), checkpointing as it goes.
func TestDurabilityTortureChild(t *testing.T) {
	dir := os.Getenv("RMA_TORTURE_DIR")
	if dir == "" {
		t.Skip("torture child helper; driven by TestDurabilityKill9Torture")
	}
	ackPath := os.Getenv("RMA_TORTURE_ACK")

	s, err := OpenSharded(dir, tortureEngineOpts()...)
	start := 0
	ref := make(map[int64]int64)
	if errors.Is(err, ErrNoCheckpoint) {
		s, err = NewSharded(tortureShards, append(tortureEngineOpts(), WithDurability(dir))...)
		if err != nil {
			tortureDie("create: %v", err)
		}
	} else if err != nil {
		tortureDie("open: %v", err)
	} else {
		if v, ok := s.Find(tortureCounterKey); ok {
			start = int(v)
		}
		replayTortureRef(ref, 0, start)
	}

	ack, err := os.OpenFile(ackPath, os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
	if err != nil {
		tortureDie("ack log: %v", err)
	}
	for i := start; i < start+tortureMaxOps; i++ {
		k, v := tortureOp(i)
		if _, live := ref[k]; live {
			delete(ref, k)
			if ok, err := s.Delete(k); err != nil || !ok {
				tortureDie("op %d: Delete(%d) = %v, %v", i, k, ok, err)
			}
		} else {
			ref[k] = v
			if err := s.Insert(k, v); err != nil {
				tortureDie("op %d: Insert(%d): %v", i, k, err)
			}
		}
		if (i+1)%tortureCkptEvery == 0 {
			// The counter names the exact op prefix this checkpoint holds;
			// written before Checkpoint so it rides inside the epoch.
			s.Delete(tortureCounterKey)
			if err := s.Insert(tortureCounterKey, int64(i+1)); err != nil {
				tortureDie("counter: %v", err)
			}
			if err := s.Checkpoint(); err != nil {
				tortureDie("checkpoint at %d: %v", i+1, err)
			}
			var rec [8]byte
			binary.LittleEndian.PutUint64(rec[:], uint64(i+1))
			if _, err := ack.Write(rec[:]); err != nil {
				tortureDie("ack write: %v", err)
			}
			if err := ack.Sync(); err != nil {
				tortureDie("ack sync: %v", err)
			}
		}
	}
	ack.Close()
	s.Close()
}

// lastAck returns the newest acknowledged op counter (0 if none);
// a torn trailing record — the kill can land mid-ack-write — is
// ignored.
func lastAck(t *testing.T, path string) uint64 {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return 0
		}
		t.Fatal(err)
	}
	n := len(b) / 8 * 8
	if n == 0 {
		return 0
	}
	return binary.LittleEndian.Uint64(b[n-8:])
}

// verifyTortureDir recovers the map and differentially verifies it
// against the replayed reference; returns the recovered op counter.
func verifyTortureDir(t *testing.T, dir string, acked uint64) uint64 {
	t.Helper()
	s, err := OpenSharded(dir, tortureEngineOpts()...)
	if errors.Is(err, ErrNoCheckpoint) {
		if acked != 0 {
			t.Fatalf("acknowledged checkpoint %d but no recovery point on disk", acked)
		}
		return 0
	}
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	defer s.Close()

	v, ok := s.Find(tortureCounterKey)
	if !ok {
		t.Fatal("recovered checkpoint has no op counter")
	}
	counter := uint64(v)
	if counter < acked {
		t.Fatalf("lost acknowledged checkpoint: recovered op counter %d < acked %d", counter, acked)
	}
	if err := s.Validate(); err != nil {
		t.Fatalf("recovered map invalid: %v", err)
	}
	ref := make(map[int64]int64)
	replayTortureRef(ref, 0, int(counter))
	if got, want := s.Size(), len(ref)+1; got != want {
		t.Fatalf("recovered size %d, want %d (+counter) at op %d", got, want, counter)
	}
	for k, v := range s.All() {
		if k == tortureCounterKey {
			continue
		}
		rv, ok := ref[k]
		if !ok {
			t.Fatalf("recovered key %d not in reference at op %d", k, counter)
		}
		if rv != v {
			t.Fatalf("recovered value %d under key %d, reference says %d", v, k, rv)
		}
	}
	return counter
}

// TestDurabilityKill9Torture is the crash loop: spawn child, let it
// reach at least one new checkpoint, SIGKILL it at a random offset,
// recover and differentially verify. Repeat.
func TestDurabilityKill9Torture(t *testing.T) {
	if os.Getenv("RMA_TORTURE_DIR") != "" {
		t.Skip("torture child process")
	}
	if testing.Short() && os.Getenv("RMA_TORTURE_SCALE") == "" {
		t.Skip("kill -9 torture skipped in -short mode")
	}
	cycles := 50
	if testing.Short() {
		cycles = 8
	}
	if s := os.Getenv("RMA_TORTURE_SCALE"); s != "" {
		scale, err := strconv.Atoi(s)
		if err != nil || scale < 1 {
			t.Fatalf("bad RMA_TORTURE_SCALE %q", s)
		}
		cycles *= scale
	}

	// RMA_TORTURE_BASE pins the map directory and ack log to a stable
	// path that outlives the test process — CI's nightly job sets it so
	// a failure's on-disk state (manifests, page files, ack history)
	// ships in the uploaded artifact. Unset, state lives in t.TempDir.
	base := os.Getenv("RMA_TORTURE_BASE")
	if base == "" {
		base = t.TempDir()
	} else if err := os.MkdirAll(base, 0o755); err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(base, "map")
	ackPath := filepath.Join(base, "acks.log")
	rng := rand.New(rand.NewSource(20260808))
	var maxCounter uint64

	for cycle := 0; cycle < cycles; cycle++ {
		ackBefore := lastAck(t, ackPath)
		cmd := exec.Command(os.Args[0], "-test.run=^TestDurabilityTortureChild$")
		cmd.Env = append(os.Environ(),
			"RMA_TORTURE_DIR="+dir, "RMA_TORTURE_ACK="+ackPath)
		var out strings.Builder
		cmd.Stdout, cmd.Stderr = &out, &out
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		exited := make(chan error, 1)
		go func() { exited <- cmd.Wait() }()

		// Let the child reach at least one new acknowledged checkpoint so
		// every cycle makes forward progress, then kill at a random
		// offset — often mid-checkpoint or mid-publish.
		deadline := time.After(30 * time.Second)
	progress:
		for lastAck(t, ackPath) == ackBefore {
			select {
			case err := <-exited:
				// Child finished its op cap (or died): either way the tree
				// must verify; a self-death is a failure.
				if err != nil {
					t.Fatalf("cycle %d: child died on its own: %v\n%s", cycle, err, out.String())
				}
				break progress
			case <-deadline:
				cmd.Process.Kill()
				<-exited
				t.Fatalf("cycle %d: no checkpoint progress in 30s\n%s", cycle, out.String())
			case <-time.After(time.Millisecond):
			}
		}
		select {
		case <-exited:
		default:
			time.Sleep(time.Duration(rng.Intn(40)) * time.Millisecond)
			cmd.Process.Kill()
			<-exited
		}

		acked := lastAck(t, ackPath)
		counter := verifyTortureDir(t, dir, acked)
		if counter > maxCounter {
			maxCounter = counter
		}
		if counter < maxCounter {
			t.Fatalf("cycle %d: op counter went backwards: %d after %d", cycle, counter, maxCounter)
		}
	}
	if maxCounter == 0 {
		t.Fatal("torture loop made no progress: no checkpoint ever acknowledged")
	}
	t.Logf("survived %d kill -9 cycles; final op counter %d, last ack %d",
		cycles, maxCounter, lastAck(t, ackPath))
}
